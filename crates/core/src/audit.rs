//! Self-auditing correctness layer (C-AUDIT): structural MVPP validation,
//! rewrite coverage checks, and differential cost oracles.
//!
//! Three families of checks keep the pipeline honest:
//!
//! 1. **Structural invariants** ([`validate_mvpp`], [`validate_schemas`]):
//!    every MVPP produced by construction or rewriting must be acyclic with
//!    children inserted before parents, have leaves that are exactly base
//!    relations, roots that are exactly query nodes (every parentless node
//!    is a root), unique semantic keys (interning soundness), expression
//!    edges that agree with graph edges, and schemas that infer cleanly at
//!    every node — which in particular proves every pushed-down projection
//!    union still covers all of its consumers.
//! 2. **Rewrite coverage** ([`check_query_rewrite`]): a rewritten query plan
//!    must read the same base relations, produce the same output schema and
//!    preserve every predicate atom of the original; conjunctive atoms that
//!    appear from nowhere (a silent *strengthening*) are rejected, while new
//!    atoms inside pushed-down disjunctions (which only widen a shared leaf)
//!    are allowed.
//! 3. **Differential cost oracles** ([`check_cost_paths`],
//!    [`check_policy_cost_paths`], [`check_greedy_trace`],
//!    [`reference_greedy`], [`greedy_no_prune`]): [`evaluate`],
//!    [`evaluate_set`] and the [`IncrementalEvaluator`] must agree *to the
//!    last bit* on any materialization choice — under pure recompute
//!    maintenance and under every probed per-view delta-policy assignment —
//!    and the greedy's incremental `Cs` bookkeeping must equal savings
//!    recomputed from scratch with the slow `BTreeSet`-based traversals.
//!
//! Violations are collected into an [`AuditReport`] instead of panicking so a
//! single audit pass can surface every problem at once.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use mvdesign_algebra::{output_attrs, Expr, ExprArena, Predicate};
use mvdesign_catalog::Catalog;

use crate::annotate::AnnotatedMvpp;
use crate::evaluate::{
    choose_policies, evaluate, evaluate_set, evaluate_set_with_policies, CostBreakdown,
    MaintenanceMode,
};
use crate::greedy::{GreedySelection, SelectionTrace, TraceStep, TraceVerdict};
use crate::incremental::IncrementalEvaluator;
use crate::mvpp::{Mvpp, NodeId};
use crate::nodeset::NodeSet;

/// One failed invariant: which check tripped and a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Stable name of the check (e.g. `"acyclic"`, `"cost-paths"`).
    pub check: &'static str,
    /// What exactly went wrong, with node labels/ids where available.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// The outcome of an audit pass: empty means every invariant held.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// An empty (passing) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a violation.
    pub fn push(&mut self, check: &'static str, detail: impl Into<String>) {
        self.violations.push(AuditViolation {
            check,
            detail: detail.into(),
        });
    }

    /// Absorbs another report's violations.
    pub fn merge(&mut self, other: AuditReport) {
        self.violations.extend(other.violations);
    }

    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The collected violations.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Panics with every violation listed if the report is not clean.
    ///
    /// # Panics
    ///
    /// Panics when [`AuditReport::is_clean`] is false — the intended use in
    /// tests and the `repro audit` gate.
    pub fn assert_clean(&self, context: &str) {
        assert!(
            self.is_clean(),
            "audit failed for {context}:\n{}",
            self.violations
                .iter()
                .map(|v| format!("  - {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("audit clean");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Validates the structural invariants of an MVPP graph.
///
/// Checked invariants:
///
/// - **children-first order** (implies acyclicity): every edge points from a
///   larger node id to a smaller one;
/// - **edge symmetry**: `c ∈ children(v)` iff `v ∈ parents(c)`;
/// - **leaves are exactly base relations**: a node has no children iff its
///   expression is [`Expr::Base`];
/// - **roots are exactly query nodes**: every root id is in range and every
///   parentless node is the root of some query (no orphans);
/// - **interning soundness**: no two nodes share a semantic key, and each
///   node's expression children match its graph children key-for-key;
/// - **frequency sanity**: every query frequency is finite and non-negative.
pub fn validate_mvpp(mvpp: &Mvpp) -> AuditReport {
    let mut report = AuditReport::new();
    let n = mvpp.len();

    let mut keys: BTreeSet<String> = BTreeSet::new();
    for node in mvpp.nodes() {
        let v = node.id();
        // Children-first insertion: child ids strictly below the parent's.
        for c in node.children() {
            if c.0 >= v.0 {
                report.push(
                    "acyclic",
                    format!(
                        "edge {} -> {} does not point to an earlier node",
                        mvpp.node(v).label(),
                        mvpp.node(*c).label()
                    ),
                );
            }
            if c.0 < n && !mvpp.node(*c).parents().contains(&v) {
                report.push(
                    "edge-symmetry",
                    format!(
                        "{} lists child {} which does not list it back as parent",
                        node.label(),
                        mvpp.node(*c).label()
                    ),
                );
            }
        }
        for p in node.parents() {
            if p.0 >= n || !mvpp.node(*p).children().contains(&v) {
                report.push(
                    "edge-symmetry",
                    format!(
                        "{} lists parent {:?} which does not list it back as child",
                        node.label(),
                        p
                    ),
                );
            }
        }
        // Leaves are exactly base relations.
        let is_base = matches!(&**node.expr(), Expr::Base(_));
        if node.is_leaf() != is_base || (node.children().is_empty() != is_base) {
            report.push(
                "leaves-are-bases",
                format!(
                    "{}: is_leaf={}, children={}, base={}",
                    node.label(),
                    node.is_leaf(),
                    node.children().len(),
                    is_base
                ),
            );
        }
        // Interning soundness: semantic keys unique.
        if !keys.insert(node.expr().semantic_key()) {
            report.push(
                "interning",
                format!("{}: duplicate semantic key", node.label()),
            );
        }
        // Expression edges agree with graph edges (as multisets of keys).
        let mut expr_keys: Vec<String> = node
            .expr()
            .children()
            .iter()
            .map(|c| c.semantic_key())
            .collect();
        let mut graph_keys: Vec<String> = node
            .children()
            .iter()
            .filter(|c| c.0 < n)
            .map(|c| mvpp.node(*c).expr().semantic_key())
            .collect();
        expr_keys.sort();
        expr_keys.dedup();
        graph_keys.sort();
        graph_keys.dedup();
        if expr_keys != graph_keys {
            report.push(
                "expr-edges",
                format!(
                    "{}: expression children do not match graph children",
                    node.label()
                ),
            );
        }
    }

    // Roots are exactly query nodes.
    let root_ids: BTreeSet<NodeId> = mvpp.roots().iter().map(|(_, _, r)| *r).collect();
    for (name, fq, r) in mvpp.roots() {
        if r.0 >= n {
            report.push("roots", format!("query {name} roots at out-of-range node"));
        }
        if !(fq.is_finite() && *fq >= 0.0) {
            report.push("frequency", format!("query {name} has frequency {fq}"));
        }
    }
    for node in mvpp.nodes() {
        if node.parents().is_empty() && !root_ids.contains(&node.id()) && !mvpp.is_empty() {
            report.push(
                "roots",
                format!("{} has no parents but roots no query", node.label()),
            );
        }
    }

    report
}

/// Validates that every node's schema infers cleanly against the catalog.
///
/// [`output_attrs`] walks each expression bottom-up and fails if any operator
/// references an attribute its input does not produce — so a clean pass here
/// proves, in particular, that every pushed-down projection union still
/// covers every consumer above it.
pub fn validate_schemas(mvpp: &Mvpp, catalog: &Catalog) -> AuditReport {
    let mut report = AuditReport::new();
    for node in mvpp.nodes() {
        if let Err(e) = output_attrs(node.expr(), catalog) {
            report.push(
                "schema",
                format!("{}: schema inference failed: {e}", node.label()),
            );
        }
    }
    report
}

/// Collects the rendered comparison atoms of every predicate in `expr`,
/// split into those that constrain the result conjunctively (`must`) and
/// those that only appear inside a disjunction (`any`).
fn predicate_atoms(expr: &Arc<Expr>, must: &mut BTreeSet<String>, any: &mut BTreeSet<String>) {
    fn atoms_of(p: &Predicate, top: bool, must: &mut BTreeSet<String>, any: &mut BTreeSet<String>) {
        match p {
            Predicate::True => {}
            Predicate::Cmp(c) => {
                if top {
                    must.insert(c.to_string());
                } else {
                    any.insert(c.to_string());
                }
            }
            Predicate::And(ps) => {
                for sub in ps {
                    atoms_of(sub, top, must, any);
                }
            }
            Predicate::Or(ps) => {
                for sub in ps {
                    atoms_of(sub, false, must, any);
                }
            }
        }
    }
    if let Expr::Select { predicate, .. } = &**expr {
        atoms_of(predicate, true, must, any);
    }
    for child in expr.children() {
        predicate_atoms(child, must, any);
    }
}

/// Checks that a rewritten query plan is a faithful stand-in for the
/// original.
///
/// Invariants:
///
/// - the rewritten plan reads exactly the original's base relations;
/// - it produces the same output schema (same attributes, same order);
/// - **no predicate atom is lost**: every comparison of the original occurs
///   somewhere in the rewrite (select-pushdown may move it into a shared
///   disjunction, but may not drop it);
/// - **no conjunctive strengthening is invented**: every atom the rewrite
///   applies conjunctively already existed in the original. New atoms are
///   only tolerated inside disjunctions, where merging another query's
///   predicate into a shared leaf can only *widen* the intermediate result.
pub fn check_query_rewrite(
    original: &Arc<Expr>,
    rewritten: &Arc<Expr>,
    catalog: &Catalog,
) -> AuditReport {
    let mut report = AuditReport::new();

    if original.base_relations() != rewritten.base_relations() {
        report.push(
            "rewrite-bases",
            format!(
                "base relations changed: {:?} -> {:?}",
                original.base_relations(),
                rewritten.base_relations()
            ),
        );
    }

    match (
        output_attrs(original, catalog),
        output_attrs(rewritten, catalog),
    ) {
        (Ok(a), Ok(b)) => {
            if a != b {
                report.push(
                    "rewrite-schema",
                    format!("output schema changed: {a:?} -> {b:?}"),
                );
            }
        }
        (Err(e), _) => report.push("rewrite-schema", format!("original does not infer: {e}")),
        (_, Err(e)) => report.push("rewrite-schema", format!("rewrite does not infer: {e}")),
    }

    let (mut orig_must, mut orig_any) = (BTreeSet::new(), BTreeSet::new());
    predicate_atoms(original, &mut orig_must, &mut orig_any);
    let (mut new_must, mut new_any) = (BTreeSet::new(), BTreeSet::new());
    predicate_atoms(rewritten, &mut new_must, &mut new_any);

    let orig_all: BTreeSet<&String> = orig_must.union(&orig_any).collect();
    let new_all: BTreeSet<&String> = new_must.union(&new_any).collect();
    for atom in &orig_all {
        if !new_all.contains(*atom) {
            report.push(
                "rewrite-atoms",
                format!("predicate atom {atom} lost in rewrite"),
            );
        }
    }
    for atom in &new_must {
        if !orig_all.contains(atom) {
            report.push(
                "rewrite-atoms",
                format!("rewrite conjunctively applies invented atom {atom}"),
            );
        }
    }

    report
}

/// Cross-checks the three in-core cost paths on each given materialization
/// choice: [`evaluate`] (BTreeSet walk), [`evaluate_set`] (bitset walk) and
/// the [`IncrementalEvaluator`] (both `set_frontier` and one-`flip`-at-a-time
/// routes) must agree **bit-for-bit** on every field of the breakdown.
pub fn check_cost_paths(
    a: &AnnotatedMvpp,
    choices: &[BTreeSet<NodeId>],
    mode: MaintenanceMode,
) -> AuditReport {
    let mut report = AuditReport::new();
    let capacity = a.mvpp().len();

    for m in choices {
        let reference = evaluate(a, m, mode);
        let set = NodeSet::from_ids(capacity, m.iter().copied());
        let via_set = evaluate_set(a, &set, mode);
        compare_breakdowns(&mut report, "evaluate_set", m, &reference, &via_set);

        let mut inc = IncrementalEvaluator::new(a, mode);
        inc.set_frontier(&set);
        compare_breakdowns(&mut report, "incremental", m, &reference, &inc.breakdown());
        if inc.total().to_bits() != reference.total.to_bits() {
            report.push(
                "cost-paths",
                format!(
                    "incremental total {} != evaluate total {} for {m:?}",
                    inc.total(),
                    reference.total
                ),
            );
        }

        // The flip route must land on the same totals no matter the order in
        // which the frontier was assembled.
        let mut flipper = IncrementalEvaluator::new(a, mode);
        let mut partial = BTreeSet::new();
        for v in m {
            let total = flipper.flip(*v);
            partial.insert(*v);
            let expect = evaluate(a, &partial, mode).total;
            if total.to_bits() != expect.to_bits() {
                report.push(
                    "cost-paths",
                    format!(
                        "flip route diverges at {partial:?}: {total} != {expect} (full set {m:?})"
                    ),
                );
                break;
            }
        }
    }

    report
}

/// Cross-checks the policy-aware cost paths on each materialization choice.
///
/// Three delta-policy assignments are probed per choice: nothing
/// incremental (which must additionally reproduce the plain [`evaluate`]
/// result bit-for-bit — the digit-identity guarantee for the paper's
/// tables), everything incremental, and the cost-optimal assignment from
/// [`choose_policies`]. For each one, [`evaluate_set_with_policies`] and the
/// [`IncrementalEvaluator`] (via
/// [`set_delta_policies`](IncrementalEvaluator::set_delta_policies)) must
/// agree **bit-for-bit** on every field of the breakdown.
pub fn check_policy_cost_paths(
    a: &AnnotatedMvpp,
    choices: &[BTreeSet<NodeId>],
    mode: MaintenanceMode,
) -> AuditReport {
    let mut report = AuditReport::new();
    let capacity = a.mvpp().len();

    for m in choices {
        let set = NodeSet::from_ids(capacity, m.iter().copied());
        let probes = [
            NodeSet::with_capacity(capacity),
            set.clone(),
            choose_policies(a, &set, mode),
        ];
        let mut inc = IncrementalEvaluator::new(a, mode);
        inc.set_frontier(&set);
        for delta in &probes {
            let reference = evaluate_set_with_policies(a, &set, delta, mode);
            inc.set_delta_policies(delta);
            compare_breakdowns(
                &mut report,
                "incremental-policies",
                m,
                &reference,
                &inc.breakdown(),
            );
            if delta.is_empty() {
                let plain = evaluate(a, m, mode);
                compare_breakdowns(&mut report, "policies-empty-delta", m, &plain, &reference);
            }
        }
    }

    report
}

fn compare_breakdowns(
    report: &mut AuditReport,
    path: &str,
    m: &BTreeSet<NodeId>,
    reference: &CostBreakdown,
    other: &CostBreakdown,
) {
    for (field, x, y) in [
        (
            "query_processing",
            reference.query_processing,
            other.query_processing,
        ),
        ("maintenance", reference.maintenance, other.maintenance),
        ("total", reference.total, other.total),
    ] {
        if x.to_bits() != y.to_bits() {
            report.push(
                "cost-paths",
                format!("{path}.{field} = {y} != evaluate.{field} = {x} for {m:?}"),
            );
        }
    }
}

/// An independent, deliberately slow re-implementation of the Figure-9
/// greedy: `BTreeSet`-based descendant walks instead of cached bitsets, and
/// an ancestor/descendant test instead of the precomputed same-branch check.
///
/// Returns the chosen set and the replayed trace; [`check_greedy_trace`]
/// asserts it matches [`GreedySelection`] step-for-step and bit-for-bit.
pub fn reference_greedy(a: &AnnotatedMvpp) -> (BTreeSet<NodeId>, SelectionTrace) {
    run_reference(a, true)
}

/// The reference greedy with branch pruning disabled: rejected nodes remove
/// nothing from `LV`, so every candidate gets an explicit `Cs` evaluation.
///
/// The paper argues pruning is sound (a same-branch node with smaller weight
/// cannot profit once `v` was rejected); comparing this against the pruned
/// run makes that argument an executable property.
pub fn greedy_no_prune(a: &AnnotatedMvpp) -> (BTreeSet<NodeId>, SelectionTrace) {
    run_reference(a, false)
}

fn run_reference(a: &AnnotatedMvpp, prune: bool) -> (BTreeSet<NodeId>, SelectionTrace) {
    let mvpp = a.mvpp();
    // Re-derive LV independently: positive-weight interior nodes, weight
    // descending with ascending id as the tie-break.
    let mut lv: Vec<NodeId> = mvpp
        .interior()
        .into_iter()
        .filter(|v| a.annotation(*v).weight > 0.0)
        .collect();
    lv.sort_by(|x, y| {
        let wx = a.annotation(*x).weight;
        let wy = a.annotation(*y).weight;
        wy.total_cmp(&wx).then(x.0.cmp(&y.0))
    });

    let mut trace = SelectionTrace {
        initial_lv: lv.clone(),
        steps: Vec::new(),
    };
    let mut m: BTreeSet<NodeId> = BTreeSet::new();

    while !lv.is_empty() {
        let v = lv.remove(0);
        let node = mvpp.node(v);

        let parents = node.parents();
        if !parents.is_empty() && parents.iter().all(|p| m.contains(p)) {
            trace.steps.push(TraceStep {
                node: v,
                label: node.label().to_string(),
                cs: 0.0,
                verdict: TraceVerdict::SkippedParentsMaterialized,
            });
            continue;
        }

        let ann = a.annotation(v);
        // From-scratch saving: BTreeSet::iter is ascending by id — the same
        // order as the cached bitset — so the sum must be bit-identical.
        let replicated: f64 = mvpp
            .descendants(v)
            .iter()
            .filter(|u| m.contains(u))
            .map(|u| a.annotation(*u).ca)
            .sum();
        let cs = ann.fq_weight * (ann.ca - replicated) - ann.fu_weight * ann.cm;

        if cs > 0.0 {
            m.insert(v);
            trace.steps.push(TraceStep {
                node: v,
                label: node.label().to_string(),
                cs,
                verdict: TraceVerdict::Materialized,
            });
        } else {
            let pruned: Vec<NodeId> = if prune {
                let desc = mvpp.descendants(v);
                let anc = mvpp.ancestors(v);
                lv.iter()
                    .copied()
                    .filter(|w| desc.contains(w) || anc.contains(w))
                    .collect()
            } else {
                Vec::new()
            };
            lv.retain(|w| !pruned.contains(w));
            trace.steps.push(TraceStep {
                node: v,
                label: node.label().to_string(),
                cs,
                verdict: TraceVerdict::Rejected { pruned },
            });
        }
    }

    let redundant: Vec<NodeId> = m
        .iter()
        .copied()
        .filter(|v| {
            let parents = mvpp.node(*v).parents();
            !parents.is_empty()
                && parents.iter().all(|p| m.contains(p))
                && !mvpp.roots().iter().any(|(_, _, r)| r == v)
        })
        .collect();
    for v in redundant {
        m.remove(&v);
        trace.steps.push(TraceStep {
            node: v,
            label: mvpp.node(v).label().to_string(),
            cs: 0.0,
            verdict: TraceVerdict::RemovedRedundant,
        });
    }

    (m, trace)
}

/// Replays [`GreedySelection`] against [`reference_greedy`] and checks the
/// trace invariants.
///
/// - the chosen sets and the step sequences must match exactly, with every
///   `Cs` **bit-identical** to the from-scratch recomputation;
/// - `Rejected { pruned }` may only prune nodes on the same branch as the
///   rejected node (verified with an independent ancestor/descendant walk);
/// - `SkippedParentsMaterialized` steps must actually have had all parents
///   materialized at that point.
pub fn check_greedy_trace(a: &AnnotatedMvpp) -> AuditReport {
    let mut report = AuditReport::new();
    let mvpp = a.mvpp();
    let (m, trace) = GreedySelection::new().run(a);
    let (ref_m, ref_trace) = reference_greedy(a);

    if m != ref_m {
        report.push(
            "greedy-replay",
            format!("greedy chose {m:?}, reference chose {ref_m:?}"),
        );
    }
    if trace.initial_lv != ref_trace.initial_lv {
        report.push(
            "greedy-replay",
            "initial LV differs from reference".to_string(),
        );
    }
    if trace.steps.len() != ref_trace.steps.len() {
        report.push(
            "greedy-replay",
            format!(
                "trace has {} steps, reference has {}",
                trace.steps.len(),
                ref_trace.steps.len()
            ),
        );
    }
    for (step, ref_step) in trace.steps.iter().zip(&ref_trace.steps) {
        if step.node != ref_step.node || step.verdict != ref_step.verdict {
            report.push(
                "greedy-replay",
                format!(
                    "step on {} diverges: {:?} vs reference {:?} on {}",
                    step.label, step.verdict, ref_step.verdict, ref_step.label
                ),
            );
            continue;
        }
        if step.cs.to_bits() != ref_step.cs.to_bits() {
            report.push(
                "greedy-cs",
                format!(
                    "Cs for {} = {} != from-scratch {}",
                    step.label, step.cs, ref_step.cs
                ),
            );
        }
    }

    // Trace invariants, independent of the reference run.
    let mut materialized: BTreeSet<NodeId> = BTreeSet::new();
    for step in &trace.steps {
        match &step.verdict {
            TraceVerdict::Materialized => {
                materialized.insert(step.node);
            }
            TraceVerdict::Rejected { pruned } => {
                let desc = mvpp.descendants(step.node);
                let anc = mvpp.ancestors(step.node);
                for p in pruned {
                    if !(desc.contains(p) || anc.contains(p)) {
                        report.push(
                            "greedy-prune",
                            format!(
                                "rejecting {} pruned {}, which is not on the same branch",
                                step.label,
                                mvpp.node(*p).label()
                            ),
                        );
                    }
                }
            }
            TraceVerdict::SkippedParentsMaterialized => {
                let parents = mvpp.node(step.node).parents();
                if parents.is_empty() || !parents.iter().all(|p| materialized.contains(p)) {
                    report.push(
                        "greedy-skip",
                        format!(
                            "{} skipped but its parents were not all materialized",
                            step.label
                        ),
                    );
                }
            }
            TraceVerdict::RemovedRedundant => {
                materialized.remove(&step.node);
            }
        }
    }

    report
}

/// Differential oracle for the expression interner.
///
/// Re-interns every MVPP node expression into a *fresh* [`ExprArena`] and
/// checks, pair by pair, that interned identity agrees with the independent
/// canonical-string oracle: `intern(a) == intern(b)` ⇔
/// `semantic_key(a) == semantic_key(b)`. Also checks that the arena's
/// memoized hash matches [`Expr::semantic_hash`], that the MVPP's own arena
/// resolves each node's expression back to that node, and — for every join —
/// that a freshly commuted copy lands on the same class (the positive
/// direction of the equivalence, which distinct MVPP nodes alone never
/// exercise).
pub fn check_arena(mvpp: &Mvpp) -> AuditReport {
    let mut report = AuditReport::new();
    let mut arena = ExprArena::new();
    let interned: Vec<_> = mvpp
        .nodes()
        .iter()
        .map(|n| (n, arena.intern(n.expr()), n.expr().semantic_key()))
        .collect();
    for (node, id, key) in &interned {
        if arena.semantic_hash(*id) != node.expr().semantic_hash() {
            report.push(
                "arena-hash",
                format!("{}: arena hash disagrees with semantic_hash", node.label()),
            );
        }
        if mvpp.find(node.expr()) != Some(node.id()) {
            report.push(
                "arena-find",
                format!("{}: MVPP arena does not resolve the node", node.label()),
            );
        }
        if let Expr::Join { left, right, on } = &**node.expr() {
            let commuted = Expr::join(Arc::clone(right), Arc::clone(left), on.clone());
            if arena.intern(&commuted) != *id || commuted.semantic_key() != *key {
                report.push(
                    "arena-commute",
                    format!("{}: commuted join left its class", node.label()),
                );
            }
        }
    }
    for (i, (a, a_id, a_key)) in interned.iter().enumerate() {
        for (b, b_id, b_key) in &interned[i + 1..] {
            if (a_id == b_id) != (a_key == b_key) {
                report.push(
                    "arena-intern",
                    format!(
                        "{} vs {}: interned ids {} but semantic keys {}",
                        a.label(),
                        b.label(),
                        if a_id == b_id { "agree" } else { "differ" },
                        if a_key == b_key { "agree" } else { "differ" },
                    ),
                );
            }
        }
    }
    report
}

/// Runs the full in-core audit for one annotated MVPP: structural and schema
/// validation, the interner oracle, the greedy trace replay, and the
/// differential cost oracle on a standard set of materialization choices
/// (nothing, everything, each interior node alone, and the greedy's own
/// pick).
pub fn audit_annotated(a: &AnnotatedMvpp, catalog: &Catalog) -> AuditReport {
    let mut report = validate_mvpp(a.mvpp());
    report.merge(validate_schemas(a.mvpp(), catalog));
    report.merge(check_arena(a.mvpp()));
    report.merge(check_greedy_trace(a));

    let mut choices: Vec<BTreeSet<NodeId>> = Vec::new();
    choices.push(BTreeSet::new());
    choices.push(a.mvpp().interior().into_iter().collect());
    for v in a.mvpp().interior() {
        choices.push([v].into());
    }
    let (greedy_m, _) = GreedySelection::new().run(a);
    choices.push(greedy_m);
    for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
        report.merge(check_cost_paths(a, &choices, mode));
        report.merge(check_policy_cost_paths(a, &choices, mode));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::UpdateWeighting;
    use crate::mvpp::Mvpp;
    use mvdesign_algebra::{AttrRef, CompareOp, JoinCondition, Predicate};
    use mvdesign_catalog::AttrType;
    use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("A")
            .attr("k", AttrType::Int)
            .attr("x", AttrType::Int)
            .records(10_000.0)
            .blocks(1_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("B")
            .attr("k", AttrType::Int)
            .attr("y", AttrType::Int)
            .records(5_000.0)
            .blocks(500.0)
            .update_frequency(2.0)
            .finish()
            .unwrap();
        c
    }

    fn annotated() -> (AnnotatedMvpp, Catalog) {
        let c = catalog();
        let join = Expr::join(
            Expr::base("A"),
            Expr::base("B"),
            JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
        );
        let filtered = Expr::select(
            join.clone(),
            Predicate::cmp(AttrRef::new("A", "x"), CompareOp::Gt, 5),
        );
        let mut m = Mvpp::new();
        m.insert_query("Q1", 10.0, &join);
        m.insert_query("Q2", 3.0, &filtered);
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        (AnnotatedMvpp::annotate(m, &est, UpdateWeighting::Max), c)
    }

    #[test]
    fn healthy_mvpp_audits_clean() {
        let (a, c) = annotated();
        audit_annotated(&a, &c).assert_clean("two-query join MVPP");
    }

    #[test]
    fn structural_validator_accepts_empty_mvpp() {
        assert!(validate_mvpp(&Mvpp::new()).is_clean());
    }

    #[test]
    fn rewrite_check_flags_lost_atom() {
        let c = catalog();
        let original = Expr::select(
            Expr::base("A"),
            Predicate::cmp(AttrRef::new("A", "x"), CompareOp::Eq, 1),
        );
        let rewritten = Expr::base("A");
        let report = check_query_rewrite(&original, &rewritten, &c);
        assert!(!report.is_clean());
        assert!(report
            .violations()
            .iter()
            .any(|v| v.check == "rewrite-atoms"));
    }

    #[test]
    fn rewrite_check_allows_widening_disjunction() {
        let c = catalog();
        let own = Predicate::cmp(AttrRef::new("A", "x"), CompareOp::Eq, 1);
        let other = Predicate::cmp(AttrRef::new("A", "x"), CompareOp::Eq, 2);
        let original = Expr::select(Expr::base("A"), own.clone());
        // Pushdown shape: shared leaf takes the disjunction, the query
        // re-applies its own predicate above.
        let rewritten = Expr::select(
            Expr::select(Expr::base("A"), Predicate::or([own, other])),
            Predicate::cmp(AttrRef::new("A", "x"), CompareOp::Eq, 1),
        );
        check_query_rewrite(&original, &rewritten, &c).assert_clean("widening disjunction");
    }

    #[test]
    fn rewrite_check_flags_invented_strengthening() {
        let c = catalog();
        let original = Expr::base("A");
        let rewritten = Expr::select(
            Expr::base("A"),
            Predicate::cmp(AttrRef::new("A", "x"), CompareOp::Eq, 7),
        );
        let report = check_query_rewrite(&original, &rewritten, &c);
        assert!(!report.is_clean());
    }

    #[test]
    fn cost_paths_agree_on_every_subset_here() {
        let (a, _) = annotated();
        let interior = a.mvpp().interior();
        // Exhaustive: all subsets of the (small) interior.
        let mut choices = Vec::new();
        for mask in 0u32..(1 << interior.len()) {
            let m: BTreeSet<NodeId> = interior
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, v)| *v)
                .collect();
            choices.push(m);
        }
        for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
            check_cost_paths(&a, &choices, mode).assert_clean("exhaustive subsets");
        }
    }

    #[test]
    fn greedy_trace_replays_bit_exactly() {
        let (a, _) = annotated();
        check_greedy_trace(&a).assert_clean("greedy replay");
    }

    #[test]
    fn policy_cost_paths_agree_on_every_subset_here() {
        let (a, _) = annotated();
        let interior = a.mvpp().interior();
        let mut choices = Vec::new();
        for mask in 0u32..(1 << interior.len()) {
            let m: BTreeSet<NodeId> = interior
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, v)| *v)
                .collect();
            choices.push(m);
        }
        for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
            check_policy_cost_paths(&a, &choices, mode).assert_clean("policy subsets");
        }
    }
}
