//! The Multiple View Processing Plan: a DAG merging all query plans on
//! common subexpressions.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use mvdesign_algebra::{Expr, ExprArena, ExprId, RelName};

/// Index of a node within an [`Mvpp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One vertex of the MVPP DAG.
#[derive(Debug, Clone)]
pub struct MvppNode {
    id: NodeId,
    expr: Arc<Expr>,
    expr_id: ExprId,
    children: Vec<NodeId>,
    parents: Vec<NodeId>,
    label: String,
}

impl MvppNode {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The full expression this node computes (its result relation `R(v)`).
    pub fn expr(&self) -> &Arc<Expr> {
        &self.expr
    }

    /// The node's semantic-equivalence class in [`Mvpp::arena`]. MVPP
    /// interning *is* arena interning: two nodes are shared iff their
    /// expressions landed on the same class.
    pub fn expr_id(&self) -> ExprId {
        self.expr_id
    }

    /// Direct inputs (`S(v)` in the paper).
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Direct consumers (`D(v)` in the paper).
    pub fn parents(&self) -> &[NodeId] {
        &self.parents
    }

    /// A human-readable label: the base relation name for leaves, `tmpN`
    /// for interior nodes (the paper's figures use the same convention).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether this is a leaf (base relation).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A Multiple View Processing Plan: the labelled DAG
/// `M = (V, A, R, Ca, Cm, fq, fu)` of the paper's §3.1 (the cost labels
/// `Ca`/`Cm` live in [`crate::AnnotatedMvpp`], computed against a catalog).
///
/// Structurally: every vertex corresponds to one relational-algebra
/// operation, leaf vertices are base relations, root vertices are the
/// warehouse queries. Vertices are shared whenever two plans compute the
/// same relation — the paper's common subexpressions. Sharing is decided by
/// an owned [`ExprArena`]: each vertex corresponds to exactly one interned
/// equivalence class ([`ExprId`]), so lookups are integer probes rather than
/// canonical-string builds ([`Expr::semantic_key`] renders the same classes
/// for debugging).
#[derive(Debug, Clone, Default)]
pub struct Mvpp {
    nodes: Vec<MvppNode>,
    roots: Vec<(String, f64, NodeId)>,
    arena: ExprArena,
    /// Node computing each arena class, indexed by [`ExprId`]; `None` for
    /// classes the arena knows but no vertex computes.
    node_of: Vec<Option<NodeId>>,
}

impl Mvpp {
    /// Creates an empty MVPP.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a query plan, sharing every subexpression already present,
    /// and registers its root as a query node with frequency `fq`.
    ///
    /// Returns the root's node id. Inserting two queries with identical
    /// plans yields one shared root carrying both frequencies.
    pub fn insert_query(&mut self, name: impl Into<String>, fq: f64, plan: &Arc<Expr>) -> NodeId {
        let id = self.intern(plan);
        self.roots.push((name.into(), fq, id));
        id
    }

    /// Inserts an expression (and its whole subtree), sharing existing
    /// nodes; returns the node id computing it.
    pub fn intern(&mut self, expr: &Arc<Expr>) -> NodeId {
        let expr_id = self.arena.intern(expr);
        if self.node_of.len() < self.arena.len() {
            self.node_of.resize(self.arena.len(), None);
        }
        if let Some(id) = self.node_of[expr_id.index()] {
            return id;
        }
        let children: Vec<NodeId> = expr.children().iter().map(|c| self.intern(c)).collect();
        let id = NodeId(self.nodes.len());
        let label = match &**expr {
            Expr::Base(r) => r.to_string(),
            _ => String::new(), // assigned by `relabel` below
        };
        self.nodes.push(MvppNode {
            id,
            expr: Arc::clone(expr),
            expr_id,
            children: children.clone(),
            parents: Vec::new(),
            label,
        });
        for c in children {
            self.nodes[c.0].parents.push(id);
        }
        self.node_of[expr_id.index()] = Some(id);
        self.relabel();
        id
    }

    fn relabel(&mut self) {
        let mut counter = 0;
        for i in 0..self.nodes.len() {
            if !self.nodes[i].is_leaf() {
                counter += 1;
                self.nodes[i].label = format!("tmp{counter}");
            }
        }
    }

    /// All nodes, in insertion (= topological) order.
    pub fn nodes(&self) -> &[MvppNode] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this MVPP.
    pub fn node(&self, id: NodeId) -> &MvppNode {
        &self.nodes[id.0]
    }

    /// Looks up the node computing an expression, if present. Non-mutating:
    /// probes the arena without interning new classes.
    pub fn find(&self, expr: &Arc<Expr>) -> Option<NodeId> {
        let expr_id = self.arena.lookup(expr)?;
        self.node_of.get(expr_id.index()).copied().flatten()
    }

    /// The interner deciding node sharing. Every node's
    /// [`MvppNode::expr_id`] indexes into this arena.
    pub fn arena(&self) -> &ExprArena {
        &self.arena
    }

    /// The query roots: `(name, fq, node)` triples in insertion order.
    pub fn roots(&self) -> &[(String, f64, NodeId)] {
        &self.roots
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all leaves (base relations), in topological order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all interior (non-leaf) nodes, in topological order.
    pub fn interior(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| !n.is_leaf())
            .map(|n| n.id)
            .collect()
    }

    /// The paper's `S*{v}`: all descendants of `v` (transitive inputs),
    /// excluding `v` itself.
    pub fn descendants(&self, v: NodeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        let mut stack = self.nodes[v.0].children.clone();
        while let Some(n) = stack.pop() {
            if out.insert(n) {
                stack.extend(self.nodes[n.0].children.iter().copied());
            }
        }
        out
    }

    /// The paper's `D*{v}`: all ancestors of `v` (transitive consumers),
    /// excluding `v` itself.
    pub fn ancestors(&self, v: NodeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        let mut stack = self.nodes[v.0].parents.clone();
        while let Some(n) = stack.pop() {
            if out.insert(n) {
                stack.extend(self.nodes[n.0].parents.iter().copied());
            }
        }
        out
    }

    /// The paper's `O_v`: indices into [`Mvpp::roots`] of the queries that
    /// use `v` (including queries rooted exactly at `v`).
    pub fn queries_using(&self, v: NodeId) -> Vec<usize> {
        let ancestors = self.ancestors(v);
        self.roots
            .iter()
            .enumerate()
            .filter(|(_, (_, _, root))| *root == v || ancestors.contains(root))
            .map(|(i, _)| i)
            .collect()
    }

    /// The paper's `I_v`: names of the base relations below `v`.
    pub fn base_inputs(&self, v: NodeId) -> BTreeSet<RelName> {
        self.nodes[v.0].expr.base_relations()
    }

    /// Whether `u` and `v` lie on one root-to-leaf branch (one is an
    /// ancestor of the other) — the paper's "same branch" pruning relation.
    pub fn same_branch(&self, u: NodeId, v: NodeId) -> bool {
        u == v || self.ancestors(u).contains(&v) || self.ancestors(v).contains(&u)
    }

    /// Renders the DAG as Graphviz DOT with query roots as ellipses.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=BT;");
        for n in &self.nodes {
            let shape = if n.is_leaf() { "box" } else { "plaintext" };
            let _ = writeln!(
                out,
                "  {} [label=\"{}: {}\", shape={shape}];",
                n.id,
                n.label,
                n.expr.op_label().replace('"', "\\\"")
            );
        }
        for n in &self.nodes {
            for c in &n.children {
                let _ = writeln!(out, "  {} -> {};", c, n.id);
            }
        }
        for (i, (name, fq, root)) in self.roots.iter().enumerate() {
            let _ = writeln!(out, "  q{i} [label=\"{name} (fq={fq})\", shape=ellipse];");
            let _ = writeln!(out, "  {root} -> q{i};");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{AttrRef, CompareOp, JoinCondition, Predicate};

    fn tmp1() -> Arc<Expr> {
        Expr::select(
            Expr::base("Div"),
            Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
        )
    }

    fn tmp2() -> Arc<Expr> {
        Expr::join(
            Expr::base("Pd"),
            tmp1(),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        )
    }

    fn q2_plan() -> Arc<Expr> {
        Expr::join(
            tmp2(),
            Expr::base("Pt"),
            JoinCondition::on(AttrRef::new("Pt", "Pid"), AttrRef::new("Pd", "Pid")),
        )
    }

    /// Builds the paper's Figure 2(b): Q1 and Q2 sharing tmp1/tmp2.
    fn fig2b() -> Mvpp {
        let mut m = Mvpp::new();
        m.insert_query("Q1", 10.0, &tmp2());
        m.insert_query("Q2", 0.5, &q2_plan());
        m
    }

    #[test]
    fn common_subexpressions_are_shared() {
        let m = fig2b();
        // Nodes: Pd, Div, σ, ⋈(tmp2), Pt, ⋈(tmp3) — tmp2 shared, not duplicated.
        assert_eq!(m.len(), 6);
        assert_eq!(m.roots().len(), 2);
        let tmp2_id = m.find(&tmp2()).unwrap();
        // tmp2 feeds both Q1 (as root) and Q2's join.
        assert_eq!(m.queries_using(tmp2_id), vec![0, 1]);
    }

    #[test]
    fn join_commutativity_shares_nodes() {
        let mut m = Mvpp::new();
        let a = Expr::join(Expr::base("A"), Expr::base("B"), JoinCondition::cross());
        let b = Expr::join(Expr::base("B"), Expr::base("A"), JoinCondition::cross());
        let ia = m.intern(&a);
        let ib = m.intern(&b);
        assert_eq!(ia, ib);
    }

    #[test]
    fn descendants_and_ancestors() {
        let m = fig2b();
        let tmp2_id = m.find(&tmp2()).unwrap();
        let desc = m.descendants(tmp2_id);
        assert_eq!(desc.len(), 3); // Pd, Div, σ
        let anc = m.ancestors(tmp2_id);
        assert_eq!(anc.len(), 1); // Q2's join
        let div = m.find(&Expr::base("Div")).unwrap();
        assert!(m.descendants(div).is_empty());
        assert_eq!(m.ancestors(div).len(), 3); // σ, tmp2, tmp3
    }

    #[test]
    fn base_inputs_reports_iv() {
        let m = fig2b();
        let tmp2_id = m.find(&tmp2()).unwrap();
        let iv: Vec<_> = m.base_inputs(tmp2_id).into_iter().collect();
        assert_eq!(iv.len(), 2);
    }

    #[test]
    fn same_branch_detection() {
        let m = fig2b();
        let tmp2_id = m.find(&tmp2()).unwrap();
        let div = m.find(&Expr::base("Div")).unwrap();
        let pt = m.find(&Expr::base("Pt")).unwrap();
        assert!(m.same_branch(tmp2_id, div));
        assert!(m.same_branch(div, tmp2_id));
        assert!(!m.same_branch(div, pt));
    }

    #[test]
    fn labels_follow_paper_convention() {
        let m = fig2b();
        let labels: Vec<&str> = m.nodes().iter().map(MvppNode::label).collect();
        assert!(labels.contains(&"Div"));
        assert!(labels.contains(&"tmp1"));
        assert!(labels.contains(&"tmp3"));
    }

    #[test]
    fn identical_queries_share_a_root() {
        let mut m = Mvpp::new();
        let r1 = m.insert_query("Q1", 1.0, &tmp2());
        let r2 = m.insert_query("Q2", 2.0, &tmp2());
        assert_eq!(r1, r2);
        assert_eq!(m.queries_using(r1).len(), 2);
    }

    #[test]
    fn leaves_and_interior_partition_nodes() {
        let m = fig2b();
        assert_eq!(m.leaves().len() + m.interior().len(), m.len());
        assert_eq!(m.leaves().len(), 3);
    }

    #[test]
    fn dot_output_mentions_queries() {
        let dot = fig2b().to_dot("fig2b");
        assert!(dot.contains("Q1 (fq=10)"));
        assert!(dot.contains("rankdir=BT"));
    }
}
