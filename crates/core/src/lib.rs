//! Materialized view design via Multiple View Processing Plans (MVPPs).
//!
//! This crate implements the contribution of *“A Framework for Designing
//! Materialized Views in Data Warehousing Environment”* (Yang, Karlapalem &
//! Li, ICDCS 1997): given a set of warehouse queries with access frequencies
//! and base relations with update frequencies, decide **which intermediate
//! results to materialize** so the combined cost of query processing and
//! view maintenance is minimal.
//!
//! The pipeline mirrors the paper:
//!
//! 1. [`Workload`] — queries `q₁…qₖ` with frequencies `fq`, over a catalog
//!    whose relations carry update frequencies `fu`;
//! 2. [`generate_mvpps`] — the paper's Figure 4: merge individually-optimal
//!    plans on common subexpressions, once per rotation of the merge order,
//!    yielding `k` candidate [`Mvpp`] DAGs;
//! 3. [`AnnotatedMvpp`] — per-node statistics, access cost `Ca(v)`,
//!    maintenance cost `Cm(v)`, query/update weights and the node weight
//!    `w(v)`;
//! 4. [`GreedySelection`] — the paper's Figure 9 heuristic (with a full
//!    decision [trace](SelectionTrace)), alongside baselines
//!    ([`ExhaustiveSelection`], [`MaterializeAll`], [`MaterializeNone`]) and
//!    randomized extensions ([`RandomSearch`], [`SimulatedAnnealing`]);
//! 5. [`evaluate`] — total-cost evaluation of any materialization choice;
//! 6. [`Designer`] — the end-to-end loop: generate candidates, select views
//!    in each, keep the cheapest design.
//!
//! # Example
//!
//! ```
//! use mvdesign_core::{Designer, Workload};
//! use mvdesign_algebra::{parse_query_with, Query};
//! use mvdesign_catalog::{AttrType, Catalog};
//!
//! let mut catalog = Catalog::new();
//! catalog.relation("Div")
//!     .attr("Did", AttrType::Int).attr("city", AttrType::Text)
//!     .records(5_000.0).blocks(500.0)
//!     .update_frequency(1.0).selectivity("city", 0.02)
//!     .finish()?;
//! catalog.relation("Pd")
//!     .attr("Pid", AttrType::Int).attr("name", AttrType::Text).attr("Did", AttrType::Int)
//!     .records(30_000.0).blocks(3_000.0).update_frequency(1.0)
//!     .finish()?;
//! let q1 = parse_query_with(
//!     "SELECT Pd.name FROM Pd, Div WHERE Div.city='LA' AND Pd.Did=Div.Did", &catalog,
//! ).unwrap();
//! let workload = Workload::new([Query::new("Q1", 10.0, q1)]).unwrap();
//! let design = Designer::new().design(&catalog, &workload).unwrap();
//! assert!(design.cost.total.is_finite());
//! # Ok::<(), mvdesign_catalog::CatalogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annotate;
mod audit;
mod designer;
mod evaluate;
mod generate;
mod greedy;
mod incremental;
mod mvpp;
mod nodeset;
mod parallel;
mod report;
mod rewrite;
mod search;
mod workload;

pub use crate::annotate::{
    AnnotatedMvpp, MaintenancePolicy, NodeAnnotation, UpdateWeighting, DEFAULT_DELTA_FRACTION,
};
pub use crate::audit::{
    audit_annotated, check_arena, check_cost_paths, check_greedy_trace, check_policy_cost_paths,
    check_query_rewrite, greedy_no_prune, reference_greedy, validate_mvpp, validate_schemas,
    AuditReport, AuditViolation,
};
pub use crate::designer::{DesignError, DesignResult, Designer, DesignerConfig};
pub use crate::evaluate::{
    break_even_update_weight, choose_policies, evaluate, evaluate_set, evaluate_set_with_policies,
    evaluate_with_policies, mqp_batch_cost, query_cost, query_cost_set, CostBreakdown,
    MaintenanceMode,
};
pub use crate::generate::{generate_mvpps, merge_queries, GenerateConfig};
pub use crate::greedy::{GreedySelection, SelectionTrace, TraceStep, TraceVerdict};
pub use crate::incremental::IncrementalEvaluator;
pub use crate::mvpp::{Mvpp, MvppNode, NodeId};
pub use crate::nodeset::NodeSet;
pub use crate::report::{render_design, render_trace};
pub use crate::rewrite::ViewCatalog;
pub use crate::search::{
    ExhaustiveSelection, GeneticSelection, MaterializeAll, MaterializeNone, PolicyChoice,
    RandomSearch, SelectionAlgorithm, SimulatedAnnealing,
};
pub use crate::workload::{Workload, WorkloadError};
