//! The paper's Figure-9 heuristic for choosing the set `M` of nodes to
//! materialize, with a full decision trace.

use std::collections::BTreeSet;

use crate::annotate::{AnnotatedMvpp, NodeAnnotation};
use crate::mvpp::NodeId;

/// What the algorithm decided about one candidate node.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceVerdict {
    /// `Cs > 0`: inserted into `M` (Figure 9, step 6).
    Materialized,
    /// `Cs ≤ 0`: rejected; same-branch nodes later in `LV` were pruned
    /// (Figure 9, step 7).
    Rejected {
        /// Nodes removed from `LV` without being considered.
        pruned: Vec<NodeId>,
    },
    /// Every parent is already materialized, so materializing this node
    /// saves nothing (the paper's "tmp1 is ignored" case).
    SkippedParentsMaterialized,
    /// Removed from `M` by the final cleanup (Figure 9, step 9:
    /// `D(v) ⊆ M`).
    RemovedRedundant,
}

/// One considered node: its label, the incremental saving `Cs`, the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// The node considered.
    pub node: NodeId,
    /// Its label at the time (`tmp4`, `tmp2`, …).
    pub label: String,
    /// The computed `Cs` (zero for skip/cleanup steps, where it is not
    /// evaluated).
    pub cs: f64,
    /// The decision.
    pub verdict: TraceVerdict,
}

/// The full decision record of one greedy run — the §4.3 walkthrough
/// (`LV = ⟨tmp4, result4, tmp7, tmp2, result1, tmp1⟩ …`) in data form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectionTrace {
    /// The initial `LV` (positive-weight interior nodes, weight-descending).
    pub initial_lv: Vec<NodeId>,
    /// Steps in decision order.
    pub steps: Vec<TraceStep>,
}

/// The paper's greedy view-selection algorithm (Figure 9).
///
/// Nodes are considered in descending weight order
/// (`w(v) = Σ fq·Ca(v) − Σ fu·Cm(v)`); a node is materialized when its
/// incremental saving
///
/// ```text
/// Cs = Σ_{q∈Ov} fq(q)·(Ca(v) − Σ_{u∈S*v∩M} Ca(u)) − U(v)·Cm(v)
/// ```
///
/// is positive. Rejecting a node prunes every remaining same-branch node
/// (if materializing `v` gains nothing, no ancestor/descendant with smaller
/// weight can gain either — paper §4.3). A final pass removes nodes whose
/// parents are all materialized.
///
/// ```
/// use mvdesign_core::{AnnotatedMvpp, GreedySelection, Mvpp, UpdateWeighting};
/// use mvdesign_algebra::{AttrRef, Expr, JoinCondition};
/// use mvdesign_catalog::{AttrType, Catalog};
/// use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};
///
/// let mut catalog = Catalog::new();
/// for name in ["A", "B"] {
///     catalog.relation(name)
///         .attr("k", AttrType::Int)
///         .records(10_000.0).blocks(1_000.0)
///         .update_frequency(1.0)
///         .finish()?;
/// }
/// let join = Expr::join(
///     Expr::base("A"), Expr::base("B"),
///     JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
/// );
/// let mut mvpp = Mvpp::new();
/// mvpp.insert_query("hot", 100.0, &join); // read 100×, refreshed once
/// let est = CostEstimator::new(&catalog, EstimationMode::Analytic, PaperCostModel::default());
/// let annotated = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
/// let (chosen, trace) = GreedySelection::new().run(&annotated);
/// assert!(!chosen.is_empty());          // the join is worth materializing
/// assert!(!trace.steps.is_empty());     // and the decision is explained
/// # Ok::<(), mvdesign_catalog::CatalogError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySelection;

impl GreedySelection {
    /// Creates the algorithm with default settings.
    pub fn new() -> Self {
        Self
    }

    /// Runs the algorithm, returning the chosen set and the decision trace.
    pub fn run(&self, a: &AnnotatedMvpp) -> (BTreeSet<NodeId>, SelectionTrace) {
        self.run_inner(a, a.weight_ordered_interior(), |ann| ann.cm)
    }

    /// Policy-aware Figure 9: every node is charged its cheaper maintenance
    /// policy, `min(Cm, ΔCm)`, both when ordering `LV` and in the
    /// incremental saving `Cs`. A node that loses under full recompute but
    /// wins under delta maintenance becomes profitable here; the caller
    /// assigns the actual per-view policy afterwards with
    /// [`choose_policies`](crate::evaluate::choose_policies).
    pub fn run_with_policies(&self, a: &AnnotatedMvpp) -> (BTreeSet<NodeId>, SelectionTrace) {
        let eff_cm = |ann: &NodeAnnotation| ann.cm.min(ann.delta_cm);
        let eff_weight =
            |ann: &NodeAnnotation| ann.fq_weight * ann.ca - ann.fu_weight * eff_cm(ann);
        let mut lv: Vec<NodeId> = a
            .mvpp()
            .interior()
            .into_iter()
            .filter(|v| eff_weight(a.annotation(*v)) > 0.0)
            .collect();
        lv.sort_by(|x, y| {
            let wx = eff_weight(a.annotation(*x));
            let wy = eff_weight(a.annotation(*y));
            wy.total_cmp(&wx).then(x.0.cmp(&y.0))
        });
        self.run_inner(a, lv, eff_cm)
    }

    fn run_inner(
        &self,
        a: &AnnotatedMvpp,
        mut lv: Vec<NodeId>,
        eff_cm: impl Fn(&NodeAnnotation) -> f64,
    ) -> (BTreeSet<NodeId>, SelectionTrace) {
        let mvpp = a.mvpp();
        let mut trace = SelectionTrace {
            initial_lv: lv.clone(),
            steps: Vec::new(),
        };
        let mut m: BTreeSet<NodeId> = BTreeSet::new();

        while !lv.is_empty() {
            let v = lv.remove(0);
            let node = mvpp.node(v);

            // The paper ignores tmp1 because its parent tmp2 is already in
            // M: a node all of whose parents are materialized can never be
            // read by a query.
            let parents = node.parents();
            if !parents.is_empty() && parents.iter().all(|p| m.contains(p)) {
                trace.steps.push(TraceStep {
                    node: v,
                    label: node.label().to_string(),
                    cs: 0.0,
                    verdict: TraceVerdict::SkippedParentsMaterialized,
                });
                continue;
            }

            let ann = a.annotation(v);
            // Replicated saving: queries already read materialized
            // descendants of v, so those descendants' Ca no longer counts
            // toward v's saving. The cached descendant bitset iterates in
            // ascending id order — the same order the BTreeSet walk used —
            // so the sum is bit-identical.
            let replicated: f64 = a
                .descendant_set(v)
                .iter()
                .filter(|u| m.contains(u))
                .map(|u| a.annotation(u).ca)
                .sum();
            let cs = ann.fq_weight * (ann.ca - replicated) - ann.fu_weight * eff_cm(ann);

            if cs > 0.0 {
                m.insert(v);
                trace.steps.push(TraceStep {
                    node: v,
                    label: node.label().to_string(),
                    cs,
                    verdict: TraceVerdict::Materialized,
                });
            } else {
                let pruned: Vec<NodeId> = lv
                    .iter()
                    .copied()
                    .filter(|w| a.same_branch(v, *w))
                    .collect();
                lv.retain(|w| !pruned.contains(w));
                trace.steps.push(TraceStep {
                    node: v,
                    label: node.label().to_string(),
                    cs,
                    verdict: TraceVerdict::Rejected { pruned },
                });
            }
        }

        // Step 9: a node whose consumers are all materialized is redundant.
        let redundant: Vec<NodeId> = m
            .iter()
            .copied()
            .filter(|v| {
                let parents = mvpp.node(*v).parents();
                !parents.is_empty()
                    && parents.iter().all(|p| m.contains(p))
                    // …and no query is rooted at v itself.
                    && !mvpp.roots().iter().any(|(_, _, r)| r == v)
            })
            .collect();
        for v in redundant {
            m.remove(&v);
            trace.steps.push(TraceStep {
                node: v,
                label: mvpp.node(v).label().to_string(),
                cs: 0.0,
                verdict: TraceVerdict::RemovedRedundant,
            });
        }

        (m, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::UpdateWeighting;
    use crate::evaluate::{evaluate, MaintenanceMode};
    use crate::mvpp::Mvpp;
    use mvdesign_algebra::{AttrRef, CompareOp, Expr, JoinCondition, Predicate};
    use mvdesign_catalog::{AttrType, Catalog, RelName, RelationStats};
    use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Pd")
            .attr("Pid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Did", AttrType::Int)
            .records(30_000.0)
            .blocks(3_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("Div")
            .attr("Did", AttrType::Int)
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .update_frequency(1.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        c.relation("Pt")
            .attr("Tid", AttrType::Int)
            .attr("Pid", AttrType::Int)
            .records(80_000.0)
            .blocks(10_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.set_join_selectivity(
            AttrRef::new("Pd", "Did"),
            AttrRef::new("Div", "Did"),
            1.0 / 5_000.0,
        )
        .unwrap();
        c.set_join_selectivity(
            AttrRef::new("Pt", "Pid"),
            AttrRef::new("Pd", "Pid"),
            1.0 / 30_000.0,
        )
        .unwrap();
        c.set_size_override(
            [RelName::new("Pd"), RelName::new("Div")],
            RelationStats::new(30_000.0, 5_000.0),
        )
        .unwrap();
        c
    }

    fn tmp1() -> Arc<Expr> {
        Expr::select(
            Expr::base("Div"),
            Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
        )
    }

    fn tmp2() -> Arc<Expr> {
        Expr::join(
            Expr::base("Pd"),
            tmp1(),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        )
    }

    fn tmp3() -> Arc<Expr> {
        Expr::join(
            tmp2(),
            Expr::base("Pt"),
            JoinCondition::on(AttrRef::new("Pt", "Pid"), AttrRef::new("Pd", "Pid")),
        )
    }

    fn annotated() -> AnnotatedMvpp {
        let mut m = Mvpp::new();
        m.insert_query("Q1", 10.0, &tmp2());
        m.insert_query("Q2", 0.5, &tmp3());
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        AnnotatedMvpp::annotate(m, &est, UpdateWeighting::Max)
    }

    #[test]
    fn greedy_materializes_shared_profitable_node() {
        let a = annotated();
        let (m, trace) = GreedySelection::new().run(&a);
        let shared = a.mvpp().find(&tmp2()).unwrap();
        assert!(m.contains(&shared), "greedy chose {m:?}, trace: {trace:?}");
    }

    #[test]
    fn tmp1_is_skipped_once_tmp2_is_materialized() {
        let a = annotated();
        let (m, trace) = GreedySelection::new().run(&a);
        let sigma = a.mvpp().find(&tmp1()).unwrap();
        assert!(!m.contains(&sigma));
        // It must have been skipped or pruned, never materialized.
        for step in &trace.steps {
            if step.node == sigma {
                assert_ne!(step.verdict, TraceVerdict::Materialized);
            }
        }
    }

    #[test]
    fn greedy_beats_materialize_nothing_here() {
        let a = annotated();
        let (m, _) = GreedySelection::new().run(&a);
        let greedy_cost = evaluate(&a, &m, MaintenanceMode::SharedRecompute).total;
        let none_cost = evaluate(&a, &BTreeSet::new(), MaintenanceMode::SharedRecompute).total;
        assert!(
            greedy_cost < none_cost,
            "greedy {greedy_cost} vs none {none_cost}"
        );
    }

    #[test]
    fn trace_initial_lv_is_weight_ordered() {
        let a = annotated();
        let (_, trace) = GreedySelection::new().run(&a);
        assert_eq!(trace.initial_lv, a.weight_ordered_interior());
        assert!(!trace.steps.is_empty());
    }

    #[test]
    fn cs_of_first_node_equals_its_weight() {
        // For the first considered node nothing is materialized yet, so
        // Cs = w(v).
        let a = annotated();
        let (_, trace) = GreedySelection::new().run(&a);
        let first = &trace.steps[0];
        let w = a.annotation(first.node).weight;
        assert!((first.cs - w).abs() < 1e-9);
    }
}
