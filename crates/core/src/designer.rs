//! End-to-end materialized view design: generate candidate MVPPs, select
//! views in each, keep the cheapest design.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use mvdesign_algebra::{output_attrs, InferError};
use mvdesign_catalog::Catalog;
use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign_optimizer::{Planner, PlannerConfig};

use crate::annotate::{AnnotatedMvpp, MaintenancePolicy, UpdateWeighting};
use crate::evaluate::{evaluate, CostBreakdown, MaintenanceMode};
use crate::generate::{generate_mvpps, GenerateConfig};
use crate::greedy::{GreedySelection, SelectionTrace};
use crate::mvpp::NodeId;
use crate::parallel;
use crate::search::SelectionAlgorithm;
use crate::workload::Workload;

/// Errors from [`Designer::design`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DesignError {
    /// A query references relations or attributes the catalog lacks.
    InvalidQuery {
        /// The offending query's name.
        query: String,
        /// The underlying schema error.
        source: InferError,
    },
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::InvalidQuery { query, source } => {
                write!(
                    f,
                    "query `{query}` is invalid against the catalog: {source}"
                )
            }
        }
    }
}

impl Error for DesignError {}

/// Configuration for [`Designer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DesignerConfig {
    /// Cardinality estimation mode.
    pub estimation: EstimationMode,
    /// MVPP generation knobs.
    pub generate: GenerateConfig,
    /// Planner knobs for the per-query optimal plans.
    pub planner: PlannerConfig,
    /// How maintenance is charged when evaluating designs.
    pub maintenance: MaintenanceMode,
    /// How update weights are derived.
    pub update_weighting: UpdateWeighting,
    /// How materialized views are refreshed.
    pub maintenance_policy: MaintenancePolicy,
    /// Worker threads for evaluating candidate MVPPs concurrently: `0`
    /// (the default) uses all available cores, `1` runs sequentially. The
    /// produced design is identical at any setting — candidates are scored
    /// independently and reduced in rotation order.
    pub parallelism: usize,
}

/// A finished design.
#[derive(Debug, Clone)]
pub struct DesignResult {
    /// The chosen (annotated) MVPP.
    pub mvpp: AnnotatedMvpp,
    /// Node ids chosen for materialization.
    pub materialized: BTreeSet<NodeId>,
    /// Evaluated cost of the design.
    pub cost: CostBreakdown,
    /// The greedy algorithm's decision trace on the chosen MVPP.
    pub trace: SelectionTrace,
    /// Which rotation (candidate index) won.
    pub candidate_index: usize,
    /// Total cost of each candidate MVPP after selection, in rotation order.
    pub candidate_costs: Vec<f64>,
}

impl DesignResult {
    /// Labels of the materialized nodes (e.g. `["tmp2", "tmp4"]`).
    pub fn materialized_labels(&self) -> Vec<String> {
        self.materialized
            .iter()
            .map(|id| self.mvpp.mvpp().node(*id).label().to_string())
            .collect()
    }
}

/// The end-to-end designer: Figure 4 (candidate generation) plus Figure 9
/// (view selection) plus candidate comparison (§4.2's final step).
#[derive(Debug, Clone, Copy, Default)]
pub struct Designer {
    config: DesignerConfig,
}

impl Designer {
    /// A designer with default configuration (calibrated estimation, the
    /// paper's cost model, shared-recompute maintenance).
    pub fn new() -> Self {
        Self::default()
    }

    /// A designer with explicit configuration.
    pub fn with_config(config: DesignerConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DesignerConfig {
        &self.config
    }

    /// Designs the materialized view set for `workload` over `catalog`.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::InvalidQuery`] when a query references
    /// unknown relations or attributes.
    pub fn design(
        &self,
        catalog: &Catalog,
        workload: &Workload,
    ) -> Result<DesignResult, DesignError> {
        self.design_with(catalog, workload, &GreedySelection::new())
    }

    /// Like [`Designer::design`], with an explicit selection algorithm
    /// (e.g. [`crate::GeneticSelection`] or [`crate::ExhaustiveSelection`]).
    /// The decision trace always comes from the paper's greedy, for
    /// explainability, even when another algorithm picks the set.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::InvalidQuery`] when a query references
    /// unknown relations or attributes.
    pub fn design_with(
        &self,
        catalog: &Catalog,
        workload: &Workload,
        algorithm: &dyn SelectionAlgorithm,
    ) -> Result<DesignResult, DesignError> {
        for q in workload.queries() {
            output_attrs(q.root(), catalog).map_err(|source| DesignError::InvalidQuery {
                query: q.name().to_string(),
                source,
            })?;
        }
        let est = CostEstimator::new(catalog, self.config.estimation, PaperCostModel::default());
        let planner = Planner::with_config(self.config.planner);
        let candidates = generate_mvpps(workload, &est, &planner, self.config.generate);

        // Pre-warm the shared stats cache sequentially, in rotation order:
        // every class a worker will read is then already filled, so the
        // parallel fan-out below is read-only on the cache and the produced
        // f64s cannot depend on thread interleaving.
        for mvpp in &candidates {
            for node in mvpp.nodes() {
                est.stats(node.expr());
            }
        }

        // Candidate MVPPs are scored independently, so they fan out across
        // threads; the estimator's class-indexed cache sits behind a mutex,
        // so every worker shares the one warm cache. The reduction below
        // runs over the ordered results exactly as the sequential loop did.
        let threads = parallel::threads_for(self.config.parallelism, candidates.len());
        let config = self.config;
        let est = &est;
        let scored = parallel::ordered_map(candidates, threads, &|_, mvpp| {
            let annotated = AnnotatedMvpp::annotate_with(
                mvpp,
                est,
                config.update_weighting,
                config.maintenance_policy,
            );
            let (_, trace) = GreedySelection::new().run(&annotated);
            let set = algorithm.select(&annotated, config.maintenance);
            let cost = evaluate(&annotated, &set, config.maintenance);
            (annotated, set, cost, trace)
        });

        let mut best: Option<DesignResult> = None;
        let mut candidate_costs = Vec::with_capacity(scored.len());
        for (i, (annotated, set, cost, trace)) in scored.into_iter().enumerate() {
            candidate_costs.push(cost.total);
            let replace = best.as_ref().is_none_or(|b| cost.total < b.cost.total);
            if replace {
                best = Some(DesignResult {
                    mvpp: annotated,
                    materialized: set,
                    cost,
                    trace,
                    candidate_index: i,
                    candidate_costs: Vec::new(),
                });
            }
        }
        let mut result = best.expect("workload is non-empty, so at least one candidate exists");
        result.candidate_costs = candidate_costs;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{parse_query_with, Query};
    use mvdesign_catalog::AttrType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Pd")
            .attr("Pid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Did", AttrType::Int)
            .records(30_000.0)
            .blocks(3_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("Div")
            .attr("Did", AttrType::Int)
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .update_frequency(1.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        c.set_join_selectivity(
            mvdesign_algebra::AttrRef::new("Pd", "Did"),
            mvdesign_algebra::AttrRef::new("Div", "Did"),
            1.0 / 5_000.0,
        )
        .unwrap();
        c
    }

    #[test]
    fn design_runs_end_to_end() {
        let c = catalog();
        let q1 = parse_query_with(
            "SELECT Pd.name FROM Pd, Div WHERE Div.city='LA' AND Pd.Did=Div.Did",
            &c,
        )
        .unwrap();
        let w = Workload::new([Query::new("Q1", 10.0, q1)]).unwrap();
        let result = Designer::new().design(&c, &w).unwrap();
        assert!(result.cost.total.is_finite());
        assert_eq!(result.candidate_costs.len(), 1);
        assert!(result.candidate_index < 1);
        // The chosen design is at least as good as every candidate.
        for cost in &result.candidate_costs {
            assert!(result.cost.total <= cost + 1e-9);
        }
    }

    #[test]
    fn invalid_query_is_reported_with_its_name() {
        let c = catalog();
        let bad = parse_query_with("SELECT Pd.name FROM Pd, Ghost", &c).unwrap();
        let w = Workload::new([Query::new("Qbad", 1.0, bad)]).unwrap();
        let err = Designer::new().design(&c, &w).unwrap_err();
        match err {
            DesignError::InvalidQuery { query, .. } => assert_eq!(query, "Qbad"),
        }
    }

    #[test]
    fn materialized_labels_resolve() {
        let c = catalog();
        let q1 = parse_query_with(
            "SELECT Pd.name FROM Pd, Div WHERE Div.city='LA' AND Pd.Did=Div.Did",
            &c,
        )
        .unwrap();
        let w = Workload::new([Query::new("Q1", 50.0, q1)]).unwrap();
        let result = Designer::new().design(&c, &w).unwrap();
        let labels = result.materialized_labels();
        assert_eq!(labels.len(), result.materialized.len());
    }
}
