//! Answering queries *from* the materialized views: rewrite an expression
//! so every subexpression that matches a registered view becomes a scan of
//! the stored view.
//!
//! This closes the loop the paper's architecture (Figure 1) implies: after
//! the design phase decides what to materialize, the warehouse must route
//! incoming queries — including *ad hoc* ones that were not in the design
//! workload — through the stored views.

use std::sync::Arc;

use mvdesign_algebra::{Expr, ExprArena, RelName};

use crate::designer::DesignResult;

/// A registry of materialized views: a stored name per view definition.
///
/// Matching is by interned semantic class ([`ExprArena`]), so any expression
/// equivalent up to join commutativity/associativity and predicate
/// normalisation hits the view, not just syntactically identical ones.
#[derive(Debug, Clone, Default)]
pub struct ViewCatalog {
    views: Vec<(RelName, Arc<Expr>)>,
    arena: ExprArena,
    /// Stored name per arena class, indexed by [`mvdesign_algebra::ExprId`];
    /// `None` for classes interned only as view subexpressions.
    name_of: Vec<Option<RelName>>,
}

impl ViewCatalog {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a view definition under a stored-table name.
    ///
    /// Returns `false` (and keeps the existing entry) when an equivalent
    /// view is already registered.
    pub fn register(&mut self, name: impl Into<RelName>, definition: Arc<Expr>) -> bool {
        let id = self.arena.intern(&definition);
        if self.name_of.len() < self.arena.len() {
            self.name_of.resize(self.arena.len(), None);
        }
        if self.name_of[id.index()].is_some() {
            return false;
        }
        let name = name.into();
        self.name_of[id.index()] = Some(name.clone());
        self.views.push((name, definition));
        true
    }

    /// Builds a registry from a finished design, naming each view after its
    /// MVPP node label (`tmp2`, `tmp7`, …).
    pub fn from_design(design: &DesignResult) -> Self {
        let mut out = Self::new();
        for id in &design.materialized {
            let node = design.mvpp.mvpp().node(*id);
            out.register(node.label(), Arc::clone(node.expr()));
        }
        out
    }

    /// The registered views, in registration order.
    pub fn views(&self) -> &[(RelName, Arc<Expr>)] {
        &self.views
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The stored name answering `expr` exactly, if any. Non-mutating: the
    /// probe never interns new classes.
    pub fn exact_match(&self, expr: &Arc<Expr>) -> Option<&RelName> {
        let id = self.arena.lookup(expr)?;
        self.name_of.get(id.index())?.as_ref()
    }

    /// Rewrites `expr`, replacing every maximal subexpression that matches a
    /// registered view with a scan of the stored view.
    ///
    /// The replacement is a [`Expr::Base`] leaf named after the view; the
    /// stored table keeps the original qualified attributes, so operators
    /// above the replacement still resolve (the engine looks attributes up
    /// by name, not by table). Returns the input unchanged when nothing
    /// matches.
    pub fn rewrite(&self, expr: &Arc<Expr>) -> Arc<Expr> {
        if let Some(name) = self.exact_match(expr) {
            return Expr::base(name.clone());
        }
        let children = expr.children();
        if children.is_empty() {
            return Arc::clone(expr);
        }
        let rewritten: Vec<Arc<Expr>> = children.iter().map(|c| self.rewrite(c)).collect();
        if rewritten
            .iter()
            .zip(&children)
            .all(|(new, old)| Arc::ptr_eq(new, old))
        {
            return Arc::clone(expr);
        }
        match &**expr {
            Expr::Select { predicate, .. } => Arc::new(Expr::Select {
                input: rewritten.into_iter().next().expect("one child"),
                predicate: predicate.clone(),
            }),
            Expr::Project { attrs, .. } => Arc::new(Expr::Project {
                input: rewritten.into_iter().next().expect("one child"),
                attrs: attrs.clone(),
            }),
            Expr::Aggregate { group_by, aggs, .. } => Arc::new(Expr::Aggregate {
                input: rewritten.into_iter().next().expect("one child"),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            }),
            Expr::Join { on, .. } => {
                let mut it = rewritten.into_iter();
                let left = it.next().expect("two children");
                let right = it.next().expect("two children");
                Expr::join(left, right, on.clone())
            }
            Expr::Base(_) => unreachable!("bases have no children"),
        }
    }

    /// How many view scans `rewrite` would introduce for this expression.
    pub fn match_count(&self, expr: &Arc<Expr>) -> usize {
        if self.exact_match(expr).is_some() {
            return 1;
        }
        expr.children().iter().map(|c| self.match_count(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{AttrRef, CompareOp, JoinCondition, Predicate};

    fn tmp2() -> Arc<Expr> {
        Expr::join(
            Expr::base("Pd"),
            Expr::select(
                Expr::base("Div"),
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
            ),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        )
    }

    #[test]
    fn exact_match_replaces_whole_expression() {
        let mut v = ViewCatalog::new();
        assert!(v.register("v_tmp2", tmp2()));
        let rewritten = v.rewrite(&tmp2());
        assert_eq!(rewritten.to_string(), "v_tmp2");
    }

    #[test]
    fn matching_is_semantic_not_syntactic() {
        let mut v = ViewCatalog::new();
        v.register("v", tmp2());
        // Commuted join — different tree, same relation.
        let commuted = Expr::join(
            Expr::select(
                Expr::base("Div"),
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
            ),
            Expr::base("Pd"),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        );
        assert!(v.exact_match(&commuted).is_some());
    }

    #[test]
    fn subexpression_is_replaced_inside_larger_query() {
        let mut v = ViewCatalog::new();
        v.register("v_tmp2", tmp2());
        let bigger = Expr::project(
            Expr::join(
                tmp2(),
                Expr::base("Pt"),
                JoinCondition::on(AttrRef::new("Pt", "Pid"), AttrRef::new("Pd", "Pid")),
            ),
            [AttrRef::new("Pt", "name")],
        );
        assert_eq!(v.match_count(&bigger), 1);
        let rewritten = v.rewrite(&bigger);
        assert!(rewritten.to_string().contains("v_tmp2"), "{rewritten}");
        assert!(!rewritten.to_string().contains("Div"), "{rewritten}");
    }

    #[test]
    fn no_match_returns_input_unchanged() {
        let v = ViewCatalog::new();
        let e = tmp2();
        let out = v.rewrite(&e);
        assert!(Arc::ptr_eq(&out, &e));
        assert_eq!(v.match_count(&e), 0);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut v = ViewCatalog::new();
        assert!(v.register("a", tmp2()));
        assert!(!v.register("b", tmp2()));
        assert_eq!(v.len(), 1);
    }
}
