//! View-selection algorithms beyond the paper's greedy: exact baselines and
//! randomized search extensions, all optimizing the same evaluated total
//! cost.

use std::collections::BTreeSet;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::annotate::AnnotatedMvpp;
use crate::evaluate::{
    choose_policies, evaluate_set, evaluate_set_with_policies, CostBreakdown, MaintenanceMode,
};
use crate::greedy::GreedySelection;
use crate::incremental::IncrementalEvaluator;
use crate::mvpp::NodeId;
use crate::nodeset::NodeSet;
use crate::parallel;

/// MVPPs below this node count run every algorithm sequentially: thread
/// spawn overhead would dominate the per-evaluation work.
const PARALLEL_MIN_NODES: usize = 64;

/// A joint materialization + maintenance-policy decision: which nodes to
/// materialize and, of those, which to maintain by delta propagation (the
/// rest are fully recomputed on refresh).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyChoice {
    /// The nodes to materialize.
    pub views: BTreeSet<NodeId>,
    /// Materialized nodes refreshed incrementally — always a subset of
    /// `views`.
    pub delta_views: BTreeSet<NodeId>,
    /// The evaluated cost of the joint choice.
    pub cost: CostBreakdown,
}

/// A view-selection algorithm: picks which MVPP nodes to materialize.
///
/// `Sync` is required so one algorithm instance can drive several candidate
/// MVPPs concurrently from [`crate::Designer`].
pub trait SelectionAlgorithm: fmt::Debug + Sync {
    /// A short identifier for reports and benches.
    fn name(&self) -> &'static str;

    /// Chooses the set of nodes to materialize.
    fn select(&self, a: &AnnotatedMvpp, mode: MaintenanceMode) -> BTreeSet<NodeId>;

    /// Chooses the set of nodes to materialize **and** a per-view
    /// maintenance policy.
    ///
    /// The default runs [`select`](Self::select) unchanged and then gives
    /// each chosen view its cheaper policy
    /// ([`choose_policies`](crate::evaluate::choose_policies)), so the
    /// selected set — and every number derived from plain `select` — is
    /// untouched. Algorithms that can search the joint space (greedy,
    /// exhaustive, genetic) override this with a policy-aware search, which
    /// may pick a *different* set: a view too expensive to recompute on
    /// every update can still pay for itself under delta maintenance.
    fn select_with_policies(&self, a: &AnnotatedMvpp, mode: MaintenanceMode) -> PolicyChoice {
        let views = self.select(a, mode);
        let m = NodeSet::from_ids(a.mvpp().len(), views.iter().copied());
        joint_choice(a, mode, m)
    }
}

/// Packages a materialization set with its cheapest per-view policies and
/// the resulting evaluated cost.
fn joint_choice(a: &AnnotatedMvpp, mode: MaintenanceMode, m: NodeSet) -> PolicyChoice {
    let delta = choose_policies(a, &m, mode);
    let cost = evaluate_set_with_policies(a, &m, &delta, mode);
    PolicyChoice {
        views: m.to_btree(),
        delta_views: delta.to_btree(),
        cost,
    }
}

impl SelectionAlgorithm for GreedySelection {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn select(&self, a: &AnnotatedMvpp, _mode: MaintenanceMode) -> BTreeSet<NodeId> {
        self.run(a).0
    }

    fn select_with_policies(&self, a: &AnnotatedMvpp, mode: MaintenanceMode) -> PolicyChoice {
        let (views, _) = self.run_with_policies(a);
        joint_choice(a, mode, NodeSet::from_ids(a.mvpp().len(), views))
    }
}

/// Materialize every query result (Table 2's "Q1, Q2, Q3, Q4" strategy):
/// best latency, highest maintenance.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaterializeAll;

impl SelectionAlgorithm for MaterializeAll {
    fn name(&self) -> &'static str {
        "materialize-all-queries"
    }

    fn select(&self, a: &AnnotatedMvpp, _mode: MaintenanceMode) -> BTreeSet<NodeId> {
        a.mvpp().roots().iter().map(|(_, _, id)| *id).collect()
    }
}

/// Materialize nothing (Table 2's all-virtual strategy): zero maintenance,
/// worst latency.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaterializeNone;

impl SelectionAlgorithm for MaterializeNone {
    fn name(&self) -> &'static str {
        "materialize-none"
    }

    fn select(&self, _a: &AnnotatedMvpp, _mode: MaintenanceMode) -> BTreeSet<NodeId> {
        BTreeSet::new()
    }
}

/// Exact optimum by enumerating all `2^n` subsets of interior nodes.
///
/// When the MVPP has more interior nodes than `max_nodes`, the search is
/// restricted to the `max_nodes` highest-weight nodes (everything else stays
/// virtual) — still a superset of what the greedy can reach in practice.
///
/// The enumeration visits subsets in Gray-code order, so consecutive subsets
/// differ in exactly one node and each step is a single memoized
/// [`IncrementalEvaluator`] flip instead of a full re-evaluation. With
/// `parallelism > 1` (or `0` = all cores) the Gray sequence is partitioned
/// into contiguous index ranges, one per thread; the reduction keeps the
/// numerically-smallest subset mask among cost ties, which is exactly the
/// subset a sequential ascending-mask scan with strict improvement keeps, so
/// the result is identical at any thread count.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveSelection {
    /// Cap on nodes enumerated exactly (`2^max_nodes` evaluations).
    pub max_nodes: usize,
    /// Worker threads for partitioning the subset space; `0` = all cores,
    /// `1` = sequential. The selected set is identical at any setting.
    pub parallelism: usize,
}

impl Default for ExhaustiveSelection {
    fn default() -> Self {
        Self {
            max_nodes: 16,
            parallelism: 0,
        }
    }
}

/// The `i`-th subset mask of the Gray sequence: `g(i) = i ^ (i >> 1)`.
fn gray(i: u64) -> u64 {
    i ^ (i >> 1)
}

/// Decodes a candidate-index mask into a node set.
fn mask_to_set(mask: u64, candidates: &[NodeId], capacity: usize) -> NodeSet {
    NodeSet::from_ids(
        capacity,
        candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, id)| *id),
    )
}

impl ExhaustiveSelection {
    /// Scans Gray indices `[start, end)`, flipping one node per step, and
    /// returns the lexicographically-least `(cost, mask)` seen.
    fn scan_range(
        a: &AnnotatedMvpp,
        mode: MaintenanceMode,
        candidates: &[NodeId],
        start: u64,
        end: u64,
    ) -> (f64, u64) {
        let mut eval = IncrementalEvaluator::new(a, mode);
        let first = gray(start);
        if first != 0 {
            eval.set_frontier(&mask_to_set(first, candidates, a.mvpp().len()));
        }
        let mut best = (eval.total(), first);
        for i in start + 1..end {
            let mask = gray(i);
            // gray(i) and gray(i-1) differ exactly in bit trailing_zeros(i).
            let flipped = candidates[i.trailing_zeros() as usize];
            let cost = eval.flip(flipped);
            if cost < best.0 || (cost == best.0 && mask < best.1) {
                best = (cost, mask);
            }
        }
        best
    }
}

impl SelectionAlgorithm for ExhaustiveSelection {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn select(&self, a: &AnnotatedMvpp, mode: MaintenanceMode) -> BTreeSet<NodeId> {
        let mut candidates: Vec<NodeId> = a.mvpp().interior();
        if candidates.len() > self.max_nodes {
            candidates.sort_by(|x, y| {
                let wx = a.annotation(*x).weight;
                let wy = a.annotation(*y).weight;
                wy.total_cmp(&wx)
            });
            candidates.truncate(self.max_nodes);
        }
        let n = candidates.len();
        let total: u64 = 1 << n;
        let threads = if a.mvpp().len() < PARALLEL_MIN_NODES || total < 4_096 {
            1
        } else {
            parallel::threads_for(self.parallelism, usize::MAX)
        };
        let best = if threads <= 1 {
            Self::scan_range(a, mode, &candidates, 0, total)
        } else {
            let chunk = total.div_ceil(threads as u64);
            let ranges: Vec<(u64, u64)> = (0..threads as u64)
                .map(|t| (t * chunk, ((t + 1) * chunk).min(total)))
                .filter(|(s, e)| s < e)
                .collect();
            let per_thread = parallel::ordered_map(ranges, threads, &|_, (s, e)| {
                Self::scan_range(a, mode, &candidates, s, e)
            });
            per_thread
                .into_iter()
                .reduce(|x, y| {
                    if y.0 < x.0 || (y.0 == x.0 && y.1 < x.1) {
                        y
                    } else {
                        x
                    }
                })
                .expect("at least one range")
        };
        mask_to_set(best.1, &candidates, a.mvpp().len()).to_btree()
    }

    /// Exact joint optimum: every subset is costed at its policy-optimal
    /// maintenance. The scan runs sequentially — choosing policies rewrites
    /// only the maintenance term (no per-query walks), so each Gray step
    /// stays cheap — and keeps the numerically-smallest mask among cost
    /// ties, as in [`select`](Self::select).
    fn select_with_policies(&self, a: &AnnotatedMvpp, mode: MaintenanceMode) -> PolicyChoice {
        let mut candidates: Vec<NodeId> = a.mvpp().interior();
        if candidates.len() > self.max_nodes {
            candidates.sort_by(|x, y| {
                let wx = a.annotation(*x).weight;
                let wy = a.annotation(*y).weight;
                wy.total_cmp(&wx)
            });
            candidates.truncate(self.max_nodes);
        }
        let total: u64 = 1 << candidates.len();
        let mut eval = IncrementalEvaluator::new(a, mode);
        let mut best = (f64::INFINITY, 0u64, NodeSet::with_capacity(a.mvpp().len()));
        for i in 0..total {
            if i > 0 {
                // gray(i) and gray(i-1) differ exactly in bit
                // trailing_zeros(i).
                eval.flip(candidates[i.trailing_zeros() as usize]);
            }
            let delta = choose_policies(a, eval.frontier(), mode);
            eval.set_delta_policies(&delta);
            let cost = eval.total();
            let mask = gray(i);
            if cost < best.0 || (cost == best.0 && mask < best.1) {
                best = (cost, mask, delta);
            }
        }
        let m = mask_to_set(best.1, &candidates, a.mvpp().len());
        let cost = evaluate_set_with_policies(a, &m, &best.2, mode);
        PolicyChoice {
            views: m.to_btree(),
            delta_views: best.2.to_btree(),
            cost,
        }
    }
}

/// Uniform random subsets, keeping the best of `iterations` draws (plus the
/// empty set). A sanity baseline for the greedy.
#[derive(Debug, Clone, Copy)]
pub struct RandomSearch {
    /// Number of random subsets evaluated.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearch {
    fn default() -> Self {
        Self {
            iterations: 200,
            seed: 7,
        }
    }
}

impl SelectionAlgorithm for RandomSearch {
    fn name(&self) -> &'static str {
        "random-search"
    }

    fn select(&self, a: &AnnotatedMvpp, mode: MaintenanceMode) -> BTreeSet<NodeId> {
        let candidates = a.mvpp().interior();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // The evaluator starts at the empty frontier — the baseline draw —
        // and memoizes per-query costs across draws: distinct subsets often
        // look identical below any one query's root.
        let mut eval = IncrementalEvaluator::new(a, mode);
        let mut best_set = NodeSet::with_capacity(a.mvpp().len());
        let mut best_cost = eval.total();
        for _ in 0..self.iterations {
            let set = NodeSet::from_ids(
                a.mvpp().len(),
                candidates.iter().filter(|_| rng.gen_bool(0.5)).copied(),
            );
            eval.set_frontier(&set);
            let cost = eval.total();
            if cost < best_cost {
                best_cost = cost;
                best_set = set;
            }
        }
        best_set.to_btree()
    }
}

/// Simulated annealing over materialization sets: neighbours toggle one
/// node; worse moves are accepted with probability `exp(−Δ/T)` under a
/// geometric cooling schedule. Seeded for reproducibility.
///
/// This is the kind of randomized extension the MVPP formulation became a
/// standard benchmark for in follow-up work.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing {
    /// Number of proposal steps.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Initial temperature as a fraction of the empty-set cost.
    pub initial_temperature: f64,
    /// Multiplicative cooling per step, in `(0, 1)`.
    pub cooling: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        Self {
            iterations: 2_000,
            seed: 7,
            initial_temperature: 0.05,
            cooling: 0.995,
        }
    }
}

impl SelectionAlgorithm for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    fn select(&self, a: &AnnotatedMvpp, mode: MaintenanceMode) -> BTreeSet<NodeId> {
        let candidates = a.mvpp().interior();
        if candidates.is_empty() {
            return BTreeSet::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // The freshly-built evaluator sits at the empty frontier, which is
        // exactly the baseline the temperature schedule is scaled from.
        let mut eval = IncrementalEvaluator::new(a, mode);
        let mut temperature = eval.total().max(1.0) * self.initial_temperature;
        // Start from the greedy solution: annealing then only explores
        // around an already-good point. Every proposal is a single-node
        // toggle, so each step is one memoized incremental flip; a rejected
        // proposal flips straight back.
        let greedy = GreedySelection::new().run(a).0;
        eval.set_frontier(&NodeSet::from_ids(a.mvpp().len(), greedy));
        let mut current_cost = eval.total();
        let mut best = eval.frontier().clone();
        let mut best_cost = current_cost;
        for _ in 0..self.iterations {
            let flip = candidates[rng.gen_range(0..candidates.len())];
            let next_cost = eval.flip(flip);
            let delta = next_cost - current_cost;
            if delta <= 0.0 || rng.gen_bool((-delta / temperature.max(1e-9)).exp().min(1.0)) {
                current_cost = next_cost;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = eval.frontier().clone();
                }
            } else {
                eval.flip(flip);
            }
            temperature *= self.cooling;
        }
        best.to_btree()
    }
}

/// A genetic algorithm over materialization sets — the randomized-search
/// family that the MVPP formulation became a standard benchmark for in
/// follow-up work (e.g. GA-based view selection over MVPPs).
///
/// Individuals are bit-vectors over the interior nodes; fitness is the
/// evaluated total cost. The population is seeded with the greedy solution,
/// the empty set, and random individuals; evolution uses tournament
/// selection, uniform crossover, per-gene mutation and elitism. Fully
/// deterministic per seed.
#[derive(Debug, Clone, Copy)]
pub struct GeneticSelection {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Probability of crossover (otherwise the fitter parent is cloned).
    pub crossover_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elite: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for fitness evaluation; `0` = all cores, `1` =
    /// sequential. Reproduction stays sequential (it drives the RNG), so the
    /// evolved population — and the selected set — is identical at any
    /// setting.
    pub parallelism: usize,
}

impl Default for GeneticSelection {
    fn default() -> Self {
        Self {
            population: 32,
            generations: 60,
            mutation_rate: 0.05,
            crossover_rate: 0.9,
            elite: 2,
            seed: 7,
            parallelism: 0,
        }
    }
}

impl GeneticSelection {
    fn decode(genes: &[bool], candidates: &[NodeId]) -> BTreeSet<NodeId> {
        genes
            .iter()
            .zip(candidates)
            .filter(|(g, _)| **g)
            .map(|(_, id)| *id)
            .collect()
    }

    /// Seeds the population (greedy, empty, random fill) and evolves it with
    /// the supplied batch scorer, returning the fittest genome. All
    /// randomness flows from `self.seed`; the scorer consumes none, so two
    /// runs with scorers that agree on every genome evolve identically.
    fn evolve(
        &self,
        a: &AnnotatedMvpp,
        candidates: &[NodeId],
        mut score: impl FnMut(Vec<Vec<bool>>) -> Vec<(f64, Vec<bool>)>,
    ) -> Vec<bool> {
        let n = candidates.len();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Seed population: greedy, empty, random fill.
        let greedy = GreedySelection::new().run(a).0;
        let target = self.population.max(4);
        let mut seeds: Vec<Vec<bool>> = Vec::with_capacity(target);
        seeds.push(candidates.iter().map(|c| greedy.contains(c)).collect());
        seeds.push(vec![false; n]);
        while seeds.len() < target {
            seeds.push((0..n).map(|_| rng.gen_bool(0.3)).collect());
        }
        let mut population = score(seeds);

        for _ in 0..self.generations {
            population.sort_by(|x, y| x.0.total_cmp(&y.0));
            let elite: Vec<(f64, Vec<bool>)> = population
                .iter()
                .take(self.elite.min(population.len()))
                .cloned()
                .collect();
            let mut offspring: Vec<Vec<bool>> = Vec::with_capacity(population.len());
            while elite.len() + offspring.len() < population.len() {
                let pick = |rng: &mut StdRng| -> usize {
                    // Tournament of two.
                    let i = rng.gen_range(0..population.len());
                    let j = rng.gen_range(0..population.len());
                    if population[i].0 <= population[j].0 {
                        i
                    } else {
                        j
                    }
                };
                let p1 = pick(&mut rng);
                let p2 = pick(&mut rng);
                let mut child: Vec<bool> = if rng.gen_bool(self.crossover_rate.clamp(0.0, 1.0)) {
                    population[p1]
                        .1
                        .iter()
                        .zip(&population[p2].1)
                        .map(|(a, b)| if rng.gen_bool(0.5) { *a } else { *b })
                        .collect()
                } else {
                    population[p1.min(p2)].1.clone()
                };
                for gene in child.iter_mut() {
                    if rng.gen_bool(self.mutation_rate.clamp(0.0, 1.0)) {
                        *gene = !*gene;
                    }
                }
                offspring.push(child);
            }
            let mut next = elite;
            next.extend(score(offspring));
            population = next;
        }
        population.sort_by(|x, y| x.0.total_cmp(&y.0));
        population.swap_remove(0).1
    }
}

impl SelectionAlgorithm for GeneticSelection {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn select(&self, a: &AnnotatedMvpp, mode: MaintenanceMode) -> BTreeSet<NodeId> {
        let candidates = a.mvpp().interior();
        if candidates.is_empty() {
            return BTreeSet::new();
        }
        let capacity = a.mvpp().len();
        let fitness = |genes: &[bool]| -> f64 {
            let set = NodeSet::from_ids(
                capacity,
                genes
                    .iter()
                    .zip(&candidates)
                    .filter(|(g, _)| **g)
                    .map(|(_, id)| *id),
            );
            evaluate_set(a, &set, mode).total
        };
        let threads = if capacity < PARALLEL_MIN_NODES {
            1
        } else {
            parallel::threads_for(self.parallelism, usize::MAX)
        };
        // Fitness consumes no randomness, so evaluating a batch of
        // individuals in parallel (in population order) leaves the RNG stream
        // — and therefore the whole evolution — untouched. On a single
        // thread a persistent incremental evaluator is used instead: elites
        // and convergent offspring revisit frontiers, so the per-root memo
        // turns most scorings into cache hits. `set_frontier` produces the
        // identical float as `evaluate_set`, so the evolved population — and
        // the selected set — does not depend on which path scored it.
        let mut seq_eval = (threads <= 1).then(|| IncrementalEvaluator::new(a, mode));
        let score = |batch: Vec<Vec<bool>>| -> Vec<(f64, Vec<bool>)> {
            match seq_eval.as_mut() {
                Some(eval) => batch
                    .into_iter()
                    .map(|genes| {
                        let set = NodeSet::from_ids(
                            capacity,
                            genes
                                .iter()
                                .zip(&candidates)
                                .filter(|(g, _)| **g)
                                .map(|(_, id)| *id),
                        );
                        eval.set_frontier(&set);
                        (eval.total(), genes)
                    })
                    .collect(),
                None => parallel::ordered_map(batch, threads, &|_, genes| (fitness(&genes), genes)),
            }
        };
        let best = self.evolve(a, &candidates, score);
        Self::decode(&best, &candidates)
    }

    /// Joint evolution: the same seeded run as [`select`](Self::select),
    /// but every genome is scored at its policy-optimal total. Scoring
    /// shares one incremental evaluator (policy re-costing touches only the
    /// maintenance term), so it always runs sequentially; the RNG stream —
    /// and hence the evolution — is still fully determined by the seed.
    fn select_with_policies(&self, a: &AnnotatedMvpp, mode: MaintenanceMode) -> PolicyChoice {
        let candidates = a.mvpp().interior();
        let capacity = a.mvpp().len();
        if candidates.is_empty() {
            return joint_choice(a, mode, NodeSet::with_capacity(capacity));
        }
        let mut eval = IncrementalEvaluator::new(a, mode);
        let best = self.evolve(a, &candidates, |batch: Vec<Vec<bool>>| {
            batch
                .into_iter()
                .map(|genes| {
                    let set = NodeSet::from_ids(
                        capacity,
                        genes
                            .iter()
                            .zip(&candidates)
                            .filter(|(g, _)| **g)
                            .map(|(_, id)| *id),
                    );
                    let delta = choose_policies(a, &set, mode);
                    eval.set_frontier(&set);
                    eval.set_delta_policies(&delta);
                    (eval.total(), genes)
                })
                .collect()
        });
        let m = NodeSet::from_ids(
            capacity,
            best.iter()
                .zip(&candidates)
                .filter(|(g, _)| **g)
                .map(|(_, id)| *id),
        );
        joint_choice(a, mode, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::UpdateWeighting;
    use crate::evaluate::evaluate;
    use crate::mvpp::Mvpp;
    use mvdesign_algebra::{AttrRef, CompareOp, Expr, JoinCondition, Predicate};
    use mvdesign_catalog::{AttrType, Catalog};
    use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, records, blocks) in [
            ("A", 10_000.0, 1_000.0),
            ("B", 20_000.0, 2_000.0),
            ("C", 5_000.0, 500.0),
        ] {
            c.relation(name)
                .attr("k", AttrType::Int)
                .attr("x", AttrType::Int)
                .records(records)
                .blocks(blocks)
                .update_frequency(1.0)
                .selectivity("x", 0.1)
                .finish()
                .unwrap();
        }
        c.set_join_selectivity(
            AttrRef::new("A", "k"),
            AttrRef::new("B", "k"),
            1.0 / 20_000.0,
        )
        .unwrap();
        c.set_join_selectivity(
            AttrRef::new("B", "k"),
            AttrRef::new("C", "k"),
            1.0 / 20_000.0,
        )
        .unwrap();
        c
    }

    fn annotated() -> AnnotatedMvpp {
        let ab = Expr::join(
            Expr::base("A"),
            Expr::base("B"),
            JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
        );
        let abc = Expr::join(
            Arc::clone(&ab),
            Expr::base("C"),
            JoinCondition::on(AttrRef::new("B", "k"), AttrRef::new("C", "k")),
        );
        let filtered = Expr::select(
            Arc::clone(&ab),
            Predicate::cmp(AttrRef::new("A", "x"), CompareOp::Eq, 1),
        );
        let mut m = Mvpp::new();
        m.insert_query("Q1", 20.0, &ab);
        m.insert_query("Q2", 1.0, &abc);
        m.insert_query("Q3", 5.0, &filtered);
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        AnnotatedMvpp::annotate(m, &est, UpdateWeighting::Max)
    }

    fn total(a: &AnnotatedMvpp, algo: &dyn SelectionAlgorithm) -> f64 {
        let m = algo.select(a, MaintenanceMode::SharedRecompute);
        evaluate(a, &m, MaintenanceMode::SharedRecompute).total
    }

    #[test]
    fn exhaustive_is_a_lower_bound_for_everything() {
        let a = annotated();
        let exhaustive = total(&a, &ExhaustiveSelection::default());
        for algo in [
            &GreedySelection::new() as &dyn SelectionAlgorithm,
            &MaterializeAll,
            &MaterializeNone,
            &RandomSearch::default(),
            &SimulatedAnnealing::default(),
            &GeneticSelection::default(),
        ] {
            let cost = total(&a, algo);
            assert!(
                exhaustive <= cost + 1e-6,
                "{} beat exhaustive: {cost} < {exhaustive}",
                algo.name()
            );
        }
    }

    #[test]
    fn genetic_never_loses_to_greedy() {
        // The GA is seeded with the greedy solution and is elitist.
        let a = annotated();
        assert!(
            total(&a, &GeneticSelection::default()) <= total(&a, &GreedySelection::new()) + 1e-9
        );
    }

    #[test]
    fn genetic_is_deterministic_per_seed() {
        let a = annotated();
        let g = GeneticSelection::default();
        assert_eq!(
            g.select(&a, MaintenanceMode::SharedRecompute),
            g.select(&a, MaintenanceMode::SharedRecompute)
        );
        let other = GeneticSelection {
            seed: 1234,
            ..GeneticSelection::default()
        };
        // Different seeds may coincide on tiny instances; costs must not worsen.
        let ta = evaluate(
            &a,
            &g.select(&a, MaintenanceMode::SharedRecompute),
            MaintenanceMode::SharedRecompute,
        )
        .total;
        let tb = evaluate(
            &a,
            &other.select(&a, MaintenanceMode::SharedRecompute),
            MaintenanceMode::SharedRecompute,
        )
        .total;
        assert!((ta - tb).abs() < 1e9); // both are finite, sane values
    }

    #[test]
    fn annealing_never_loses_to_greedy() {
        // Annealing starts from the greedy solution and keeps the best seen.
        let a = annotated();
        assert!(
            total(&a, &SimulatedAnnealing::default()) <= total(&a, &GreedySelection::new()) + 1e-9
        );
    }

    #[test]
    fn materialize_all_picks_exactly_the_roots() {
        let a = annotated();
        let m = MaterializeAll.select(&a, MaintenanceMode::SharedRecompute);
        assert_eq!(m.len(), 3);
        for (_, _, root) in a.mvpp().roots() {
            assert!(m.contains(root));
        }
    }

    #[test]
    fn materialize_none_is_empty() {
        let a = annotated();
        assert!(MaterializeNone
            .select(&a, MaintenanceMode::SharedRecompute)
            .is_empty());
    }

    #[test]
    fn exhaustive_truncation_keeps_high_weight_nodes() {
        let a = annotated();
        let small = ExhaustiveSelection {
            max_nodes: 1,
            ..ExhaustiveSelection::default()
        };
        let m = small.select(&a, MaintenanceMode::SharedRecompute);
        // With one candidate, the result is either empty or that single
        // highest-weight node.
        assert!(m.len() <= 1);
    }

    #[test]
    fn random_search_is_deterministic_per_seed() {
        let a = annotated();
        let r = RandomSearch::default();
        assert_eq!(
            r.select(&a, MaintenanceMode::SharedRecompute),
            r.select(&a, MaintenanceMode::SharedRecompute)
        );
    }

    /// Two-relation join read `fq` times between refreshes, with both base
    /// relations updated `u` times. Tuned (see the flip tests) so the join
    /// is too expensive to recompute on every update but pays for itself
    /// under delta maintenance.
    fn flip_annotated(fq: f64, u: f64) -> AnnotatedMvpp {
        let mut c = Catalog::new();
        for (name, records, blocks) in [("A", 10_000.0, 1_000.0), ("B", 20_000.0, 2_000.0)] {
            c.relation(name)
                .attr("k", AttrType::Int)
                .records(records)
                .blocks(blocks)
                .update_frequency(u)
                .finish()
                .unwrap();
        }
        c.set_join_selectivity(
            AttrRef::new("A", "k"),
            AttrRef::new("B", "k"),
            1.0 / 20_000.0,
        )
        .unwrap();
        let ab = Expr::join(
            Expr::base("A"),
            Expr::base("B"),
            JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
        );
        let mut m = Mvpp::new();
        m.insert_query("Q1", fq, &ab);
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        AnnotatedMvpp::annotate(m, &est, UpdateWeighting::Max)
    }

    #[test]
    fn joint_policy_selection_flips_the_selected_set() {
        // The ISSUE's acceptance scenario: under pure recompute the join is
        // not worth materializing (5 updates × Cm dwarfs the read saving),
        // so plain exhaustive keeps everything virtual. Under the delta
        // cost model the same view pays for itself — the joint search
        // materializes it and maintains it incrementally.
        let a = flip_annotated(2.0, 5.0);
        let mode = MaintenanceMode::SharedRecompute;
        let exhaustive = ExhaustiveSelection::default();
        assert!(exhaustive.select(&a, mode).is_empty());

        let joint = exhaustive.select_with_policies(&a, mode);
        let ab = a.mvpp().interior()[0];
        assert_eq!(joint.views, [ab].into_iter().collect());
        assert_eq!(joint.delta_views, joint.views);
        let none = evaluate(&a, &BTreeSet::new(), mode).total;
        assert!(
            joint.cost.total < none,
            "joint {} vs all-virtual {none}",
            joint.cost.total
        );
    }

    #[test]
    fn policy_aware_greedy_materializes_delta_profitable_views() {
        let a = flip_annotated(2.0, 5.0);
        let g = GreedySelection::new();
        assert!(g.run(&a).0.is_empty());
        let ab = a.mvpp().interior()[0];
        assert_eq!(g.run_with_policies(&a).0, [ab].into_iter().collect());

        // And through the trait: the joint choice beats the plain one.
        let mode = MaintenanceMode::SharedRecompute;
        let joint = g.select_with_policies(&a, mode);
        let plain_total = evaluate(&a, &g.select(&a, mode), mode).total;
        assert!(joint.cost.total < plain_total);
        assert_eq!(joint.delta_views, joint.views);
    }

    #[test]
    fn default_select_with_policies_preserves_the_selected_set() {
        // Algorithms without a joint override pick the same views as
        // `select`; the policy pass can only cheapen maintenance.
        let a = annotated();
        let mode = MaintenanceMode::SharedRecompute;
        for algo in [
            &RandomSearch::default() as &dyn SelectionAlgorithm,
            &SimulatedAnnealing::default(),
            &MaterializeAll,
            &MaterializeNone,
        ] {
            let plain = algo.select(&a, mode);
            let joint = algo.select_with_policies(&a, mode);
            assert_eq!(joint.views, plain, "{} changed its views", algo.name());
            assert!(
                joint.delta_views.iter().all(|v| joint.views.contains(v)),
                "{}: delta views must be materialized",
                algo.name()
            );
            assert!(
                joint.cost.total <= evaluate(&a, &plain, mode).total + 1e-9,
                "{}: policies made the choice worse",
                algo.name()
            );
        }
    }

    #[test]
    fn joint_exhaustive_is_a_lower_bound_for_joint_algorithms() {
        for a in [annotated(), flip_annotated(2.0, 5.0)] {
            let mode = MaintenanceMode::SharedRecompute;
            let best = ExhaustiveSelection::default()
                .select_with_policies(&a, mode)
                .cost
                .total;
            for algo in [
                &GreedySelection::new() as &dyn SelectionAlgorithm,
                &MaterializeAll,
                &MaterializeNone,
                &RandomSearch::default(),
                &SimulatedAnnealing::default(),
                &GeneticSelection::default(),
            ] {
                let cost = algo.select_with_policies(&a, mode).cost.total;
                assert!(
                    best <= cost + 1e-6,
                    "{} beat joint exhaustive: {cost} < {best}",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn genetic_joint_finds_the_flip_and_is_deterministic() {
        let a = flip_annotated(2.0, 5.0);
        let mode = MaintenanceMode::SharedRecompute;
        let g = GeneticSelection::default();
        let joint = g.select_with_policies(&a, mode);
        let exact = ExhaustiveSelection::default().select_with_policies(&a, mode);
        // One interior candidate: the GA must land on the exact optimum.
        assert_eq!(joint, exact);
        assert_eq!(joint, g.select_with_policies(&a, mode));
    }

    #[test]
    fn algorithm_names_are_distinct() {
        let names = [
            GreedySelection::new().name(),
            MaterializeAll.name(),
            MaterializeNone.name(),
            ExhaustiveSelection::default().name(),
            RandomSearch::default().name(),
            SimulatedAnnealing::default().name(),
            GeneticSelection::default().name(),
        ];
        let set: std::collections::BTreeSet<_> = names.into_iter().collect();
        assert_eq!(set.len(), 7);
    }
}
