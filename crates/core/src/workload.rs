//! The warehouse workload: named queries with access frequencies.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use mvdesign_algebra::{Query, RelName};

/// Errors raised by [`Workload::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The workload contains no queries.
    Empty,
    /// Two queries share a name.
    DuplicateName(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Empty => f.write_str("workload contains no queries"),
            WorkloadError::DuplicateName(n) => write!(f, "duplicate query name `{n}`"),
        }
    }
}

impl Error for WorkloadError {}

/// A set of warehouse queries — the "global queries and their access
/// frequencies" half of the paper's problem input (the base relations and
/// their update frequencies are the catalog's half).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    queries: Vec<Query>,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when the query list is empty or contains
    /// duplicate names.
    pub fn new(queries: impl IntoIterator<Item = Query>) -> Result<Self, WorkloadError> {
        let queries: Vec<Query> = queries.into_iter().collect();
        if queries.is_empty() {
            return Err(WorkloadError::Empty);
        }
        let mut seen = BTreeSet::new();
        for q in &queries {
            if !seen.insert(q.name().to_string()) {
                return Err(WorkloadError::DuplicateName(q.name().to_string()));
            }
        }
        Ok(Self { queries })
    }

    /// The queries, in declaration order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// A query by name.
    pub fn query(&self, name: &str) -> Option<&Query> {
        self.queries.iter().find(|q| q.name() == name)
    }

    /// Every base relation referenced by at least one query.
    pub fn base_relations(&self) -> BTreeSet<RelName> {
        self.queries
            .iter()
            .flat_map(|q| q.root().base_relations())
            .collect()
    }

    /// Total access frequency across all queries.
    pub fn total_frequency(&self) -> f64 {
        self.queries.iter().map(Query::frequency).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::Expr;

    #[test]
    fn rejects_empty() {
        assert_eq!(Workload::new([]).unwrap_err(), WorkloadError::Empty);
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Workload::new([
            Query::new("Q1", 1.0, Expr::base("A")),
            Query::new("Q1", 2.0, Expr::base("B")),
        ])
        .unwrap_err();
        assert_eq!(err, WorkloadError::DuplicateName("Q1".into()));
    }

    #[test]
    fn accessors() {
        let w = Workload::new([
            Query::new("Q1", 10.0, Expr::base("A")),
            Query::new("Q2", 0.5, Expr::base("B")),
        ])
        .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.total_frequency(), 10.5);
        assert!(w.query("Q2").is_some());
        assert!(w.query("Q9").is_none());
        let rels: Vec<_> = w.base_relations().into_iter().collect();
        assert_eq!(rels.len(), 2);
    }
}
