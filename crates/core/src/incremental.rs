//! Incrementally-memoized cost evaluation for single-node frontier moves.
//!
//! The randomized and exhaustive search algorithms explore the space of
//! materialization sets by flipping one node at a time. A full
//! [`evaluate`](crate::evaluate::evaluate) walks every query's sub-DAG on
//! every probe; [`IncrementalEvaluator`] instead keeps the per-query cost of
//! the current frontier and, on a flip, re-walks only the queries whose
//! sub-DAG contains the flipped node — and even those walks are memoized on
//! the *visible part* of the frontier, so revisiting a previously-seen
//! configuration costs a hash lookup.
//!
//! Results are bit-identical to [`evaluate_set`](crate::evaluate::evaluate_set): the per-query walks are the
//! same function, and the total is re-summed in root order on every change so
//! floating-point association never differs.

use std::collections::HashMap;

use crate::annotate::{AnnotatedMvpp, MaintenancePolicy};
use crate::evaluate::{evaluate_set_with_policies, query_cost_set, CostBreakdown, MaintenanceMode};
use crate::mvpp::NodeId;
use crate::nodeset::NodeSet;

/// Memoized evaluator over single-node changes to a materialization frontier.
///
/// ```
/// # use mvdesign_core::*;
/// # use mvdesign_algebra::{parse_query_with, Query};
/// # use mvdesign_catalog::{AttrType, Catalog};
/// # use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};
/// # let mut catalog = Catalog::new();
/// # catalog.relation("R").attr("a", AttrType::Int).records(100.0).blocks(10.0)
/// #     .update_frequency(1.0).finish()?;
/// # let q = parse_query_with("SELECT R.a FROM R WHERE R.a=1", &catalog).unwrap();
/// # let workload = Workload::new([Query::new("Q1", 2.0, q)]).unwrap();
/// # let est = CostEstimator::new(&catalog, EstimationMode::Analytic, PaperCostModel::default());
/// # let planner = mvdesign_optimizer::Planner::default();
/// # let mvpp = generate_mvpps(&workload, &est, &planner, GenerateConfig::default()).remove(0);
/// # let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
/// let mut eval = IncrementalEvaluator::new(&a, MaintenanceMode::SharedRecompute);
/// let empty_cost = eval.total();
/// for v in a.mvpp().interior() {
///     let with_v = eval.flip(v);     // cost after materializing v
///     assert_eq!(with_v, eval.total());
///     eval.flip(v);                  // revert
/// }
/// assert_eq!(eval.total(), empty_cost);
/// # Ok::<(), mvdesign_catalog::CatalogError>(())
/// ```
pub struct IncrementalEvaluator<'a> {
    a: &'a AnnotatedMvpp,
    mode: MaintenanceMode,
    /// Current materialization frontier.
    m: NodeSet,
    /// Unweighted query cost per root, in root order, for the current `m`.
    per_root: Vec<f64>,
    /// Interior nodes each root's cost can depend on:
    /// `(descendants(root) ∪ {root}) ∩ interior`.
    relevant: Vec<NodeSet>,
    /// For each node id, the indices of roots whose cost can change when the
    /// node's materialization flips.
    affected: Vec<Vec<usize>>,
    /// Per-root memo: masked frontier words → unweighted query cost.
    memo: Vec<HashMap<Box<[u64]>, f64>>,
    /// Per-node maintenance term for the active mode, precomputed so each
    /// re-sum is pure bit-scans and adds: `fu_weight · cm` (Isolated) or
    /// `fu_weight · op_cost · work_fraction` (SharedRecompute).
    recompute_term: Vec<f64>,
    /// Per-node `fu_weight · scan` apply terms — `Some` only under the
    /// incremental maintenance policy.
    apply_term: Option<Vec<f64>>,
    /// Views maintained by delta propagation instead of recomputation —
    /// they charge `delta_term` and drop out of the recompute pass.
    delta: NodeSet,
    /// Per-node `fu_weight · delta_cm`, precomputed like `recompute_term`.
    delta_term: Vec<f64>,
    /// Word mask of non-leaf nodes (leaves are stored relations and never
    /// charge maintenance).
    notleaf: Vec<u64>,
    /// Reusable buffers: nodes needing a refresh pass, dirty root indices,
    /// and the masked memo key — kept to avoid per-probe allocation.
    scratch_needed: Vec<u64>,
    scratch_dirty: Vec<u64>,
    scratch_key: Vec<u64>,
    query_processing: f64,
    maintenance: f64,
    walks: u64,
}

impl<'a> IncrementalEvaluator<'a> {
    /// Creates an evaluator positioned at the empty frontier.
    pub fn new(a: &'a AnnotatedMvpp, mode: MaintenanceMode) -> Self {
        let mvpp = a.mvpp();
        let n = mvpp.len();
        let interior = NodeSet::from_ids(n, mvpp.interior());
        let roots = mvpp.roots();
        let mut relevant = Vec::with_capacity(roots.len());
        let mut affected: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, (_, _, root)) in roots.iter().enumerate() {
            let mut rel = a.descendant_set(*root).clone();
            rel.insert(*root);
            rel.intersect_with(&interior);
            for v in rel.iter() {
                affected[v.0].push(i);
            }
            relevant.push(rel);
        }
        let policy = a.maintenance_policy();
        let fraction = policy.work_fraction();
        let mut notleaf = vec![0u64; n.div_ceil(64)];
        let mut recompute_term = Vec::with_capacity(n);
        for id in 0..n {
            let v = NodeId(id);
            if !mvpp.node(v).is_leaf() {
                notleaf[id / 64] |= 1 << (id % 64);
            }
            let ann = a.annotation(v);
            recompute_term.push(match mode {
                MaintenanceMode::Isolated => ann.fu_weight * ann.cm,
                MaintenanceMode::SharedRecompute => ann.fu_weight * ann.op_cost * fraction,
            });
        }
        let delta_term = (0..n)
            .map(|id| {
                let ann = a.annotation(NodeId(id));
                ann.fu_weight * ann.delta_cm
            })
            .collect();
        let apply_term = match (mode, policy) {
            (MaintenanceMode::SharedRecompute, MaintenancePolicy::Incremental { .. }) => Some(
                (0..n)
                    .map(|id| {
                        let ann = a.annotation(NodeId(id));
                        ann.fu_weight * ann.scan
                    })
                    .collect(),
            ),
            _ => None,
        };
        let mut eval = Self {
            a,
            mode,
            m: NodeSet::with_capacity(n),
            per_root: vec![0.0; roots.len()],
            relevant,
            affected,
            memo: (0..roots.len()).map(|_| HashMap::new()).collect(),
            recompute_term,
            apply_term,
            delta: NodeSet::with_capacity(n),
            delta_term,
            notleaf,
            scratch_needed: Vec::new(),
            scratch_dirty: Vec::new(),
            scratch_key: Vec::new(),
            query_processing: 0.0,
            maintenance: 0.0,
            walks: 0,
        };
        for i in 0..eval.per_root.len() {
            eval.per_root[i] = eval.root_cost(i);
        }
        eval.resum();
        eval
    }

    /// Repositions the evaluator at an arbitrary frontier. Only the roots
    /// whose sub-DAG intersects the symmetric difference between the old and
    /// new frontier are re-costed — for an unaffected root the masked memo
    /// key is unchanged, so its stored cost is already the right one. Callers
    /// that probe a stream of similar frontiers (e.g. a converging genetic
    /// population) therefore pay only for what actually moved.
    pub fn set_frontier(&mut self, m: &NodeSet) {
        let mut dirty = std::mem::take(&mut self.scratch_dirty);
        dirty.clear();
        dirty.resize(self.per_root.len().div_ceil(64), 0);
        {
            let old = self.m.words();
            let new = m.words();
            for w in 0..old.len().max(new.len()) {
                let mut x = old.get(w).copied().unwrap_or(0) ^ new.get(w).copied().unwrap_or(0);
                while x != 0 {
                    let v = w * 64 + x.trailing_zeros() as usize;
                    x &= x - 1;
                    for &i in self.affected.get(v).map_or(&[][..], Vec::as_slice) {
                        dirty[i / 64] |= 1 << (i % 64);
                    }
                }
            }
        }
        self.m.copy_from(m);
        for (w, &word) in dirty.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.per_root[i] = self.root_cost(i);
            }
        }
        self.scratch_dirty = dirty;
        self.resum();
    }

    /// Toggles `v` in the frontier and returns the new total cost. Only the
    /// queries whose sub-DAG contains `v` are re-costed; each such cost is
    /// memoized on the slice of the frontier that query can see.
    pub fn flip(&mut self, v: NodeId) -> f64 {
        self.m.toggle(v);
        for k in 0..self.affected[v.0].len() {
            let i = self.affected[v.0][k];
            self.per_root[i] = self.root_cost(i);
        }
        self.resum();
        self.total()
    }

    /// Total cost of the current frontier — bit-identical to
    /// `evaluate_set(a, frontier, mode).total`.
    pub fn total(&self) -> f64 {
        self.query_processing + self.maintenance
    }

    /// The current materialization frontier.
    pub fn frontier(&self) -> &NodeSet {
        &self.m
    }

    /// Whether `v` is currently materialized.
    pub fn contains(&self, v: NodeId) -> bool {
        self.m.contains(v)
    }

    /// Sets the per-view maintenance policies: views in `delta` fold append
    /// deltas (charging `fu·Cmᵟ`) instead of recomputing. Only the
    /// maintenance term moves — no query re-walks, so re-costing a policy
    /// change stays O(1) in workload size and O(affected-queries) overall.
    pub fn set_delta_policies(&mut self, delta: &NodeSet) {
        self.delta.copy_from(delta);
        self.maintenance = self.current_maintenance();
    }

    /// The views currently maintained by delta propagation.
    pub fn delta_policies(&self) -> &NodeSet {
        &self.delta
    }

    /// Full cost breakdown of the current frontier — bit-identical to
    /// [`evaluate_set`](crate::evaluate::evaluate_set) on the same set (or
    /// [`evaluate_set_with_policies`] when delta policies are set).
    pub fn breakdown(&self) -> CostBreakdown {
        evaluate_set_with_policies(self.a, &self.m, &self.delta, self.mode)
    }

    /// Number of full query-walks performed so far (memo misses). A naive
    /// evaluator performs `roots × probes` walks; the difference is the
    /// savings from memoization.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Unweighted cost of root `i` under the current frontier, memoized on
    /// the frontier masked to the root's relevant nodes.
    fn root_cost(&mut self, i: usize) -> f64 {
        let mut key = std::mem::take(&mut self.scratch_key);
        key.clear();
        {
            let m_words = self.m.words();
            key.extend(
                self.relevant[i]
                    .words()
                    .iter()
                    .enumerate()
                    .map(|(w, r)| r & m_words.get(w).copied().unwrap_or(0)),
            );
        }
        // Probing by slice avoids allocating the boxed key on the hit path.
        if let Some(&cached) = self.memo[i].get(key.as_slice()) {
            self.scratch_key = key;
            return cached;
        }
        let root = self.a.mvpp().roots()[i].2;
        let cost = query_cost_set(self.a, &self.m, root);
        self.walks += 1;
        self.memo[i].insert(key.as_slice().into(), cost);
        self.scratch_key = key;
        cost
    }

    /// Re-derives the aggregate terms from per-root costs, summing in root
    /// order exactly as [`evaluate_set`](crate::evaluate::evaluate_set) does.
    fn resum(&mut self) {
        let mut qp = 0.0;
        for (i, (_, fq, _)) in self.a.mvpp().roots().iter().enumerate() {
            qp += fq * self.per_root[i];
        }
        // evaluate_set computes `total` from the raw sum before `+ 0.0`
        // normalisation; `x + 0.0` only rewrites -0.0 to +0.0, which cannot
        // change any subsequent addition, so storing the normalised value
        // keeps `total()` bit-identical.
        self.query_processing = qp + 0.0;
        self.maintenance = self.current_maintenance();
    }

    /// Maintenance of the current frontier — bit-identical to
    /// [`crate::evaluate`]'s `maintenance_cost` (and, with delta policies
    /// set, to its `maintenance_cost_with_policies`): the per-node products
    /// were precomputed with the same operand order, summation is ascending
    /// by node id exactly as the set-based iteration there, and views under
    /// a delta policy are masked out of the recompute pass word-wise.
    fn current_maintenance(&mut self) -> f64 {
        let delta_words = self.delta.words();
        // Per-word membership of the recompute pass: materialized and not
        // under a delta policy.
        let rw = |w: usize, word: u64| -> u64 {
            word & self.notleaf.get(w).copied().unwrap_or(0)
                & !delta_words.get(w).copied().unwrap_or(0)
        };
        let maintenance = match self.mode {
            MaintenanceMode::Isolated => {
                let mut s = 0.0;
                for (w, word) in self.m.words().iter().enumerate() {
                    let mut bits = rw(w, *word);
                    while bits != 0 {
                        let n = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        s += self.recompute_term[n];
                    }
                }
                s
            }
            MaintenanceMode::SharedRecompute => {
                // One refresh pass touches every recomputed node and its
                // descendants; gather that closure with word-wise ORs over
                // the cached descendant bitsets.
                let mut needed = std::mem::take(&mut self.scratch_needed);
                needed.clear();
                needed.resize(self.notleaf.len(), 0);
                for (w, word) in self.m.words().iter().enumerate() {
                    let mut bits = rw(w, *word);
                    while bits != 0 {
                        let bit = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        needed[w] |= 1 << bit;
                        let desc = self.a.descendant_set(NodeId(w * 64 + bit)).words();
                        for (i, d) in desc.iter().enumerate() {
                            needed[i] |= d;
                        }
                    }
                }
                let mut s = 0.0;
                for (w, &word) in needed.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let n = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        s += self.recompute_term[n];
                    }
                }
                let apply = match &self.apply_term {
                    None => 0.0,
                    Some(terms) => {
                        let mut ap = 0.0;
                        for (w, word) in self.m.words().iter().enumerate() {
                            let mut bits = rw(w, *word);
                            while bits != 0 {
                                let n = w * 64 + bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                ap += terms[n];
                            }
                        }
                        ap
                    }
                };
                self.scratch_needed = needed;
                s + apply
            }
        };
        // Delta-policy views charge their own propagation term, summed in
        // ascending id order like `maintenance_cost_with_policies`.
        let mut delta_sum = 0.0;
        for (w, word) in self.m.words().iter().enumerate() {
            let mut bits = word
                & self.notleaf.get(w).copied().unwrap_or(0)
                & delta_words.get(w).copied().unwrap_or(0);
            while bits != 0 {
                let n = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                delta_sum += self.delta_term[n];
            }
        }
        ((maintenance + 0.0) + delta_sum) + 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::UpdateWeighting;
    use crate::evaluate::evaluate_set;
    use crate::generate::{generate_mvpps, GenerateConfig};
    use crate::workload::Workload;
    use mvdesign_algebra::{parse_query_with, Query};
    use mvdesign_catalog::{AttrType, Catalog};
    use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};
    use mvdesign_optimizer::Planner;

    fn fixture() -> AnnotatedMvpp {
        fixture_with(crate::annotate::MaintenancePolicy::Recompute)
    }

    fn fixture_with(policy: crate::annotate::MaintenancePolicy) -> AnnotatedMvpp {
        let mut c = Catalog::new();
        for (name, recs) in [("R", 4_000.0), ("S", 9_000.0), ("T", 2_500.0)] {
            c.relation(name)
                .attr("k", AttrType::Int)
                .attr("v", AttrType::Int)
                .records(recs)
                .blocks(recs / 10.0)
                .update_frequency(1.0)
                .finish()
                .unwrap();
        }
        let q1 = parse_query_with("SELECT R.v FROM R, S WHERE R.k=S.k AND S.v=1", &c).unwrap();
        let q2 = parse_query_with("SELECT T.v FROM R, S, T WHERE R.k=S.k AND S.k=T.k", &c).unwrap();
        let q3 = parse_query_with("SELECT S.v FROM S WHERE S.v=1", &c).unwrap();
        let w = Workload::new([
            Query::new("Q1", 8.0, q1),
            Query::new("Q2", 3.0, q2),
            Query::new("Q3", 11.0, q3),
        ])
        .unwrap();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let planner = Planner::default();
        let mvpp = generate_mvpps(&w, &est, &planner, GenerateConfig::default()).remove(0);
        AnnotatedMvpp::annotate_with(mvpp, &est, UpdateWeighting::Max, policy)
    }

    #[test]
    fn flips_match_full_evaluation_exactly() {
        for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
            let a = fixture();
            let mut eval = IncrementalEvaluator::new(&a, mode);
            let mut reference = NodeSet::with_capacity(a.mvpp().len());
            assert_eq!(eval.total(), evaluate_set(&a, &reference, mode).total);
            // Deterministic pseudo-random flip sequence over interior nodes.
            let interior = a.mvpp().interior();
            let mut x = 0x9e3779b97f4a7c15u64;
            for _ in 0..200 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = interior[(x % interior.len() as u64) as usize];
                reference.toggle(v);
                let got = eval.flip(v);
                let want = evaluate_set(&a, &reference, mode);
                assert_eq!(got, want.total, "flip {v:?} diverged");
                assert_eq!(eval.breakdown(), want);
            }
        }
    }

    #[test]
    fn memoization_skips_repeat_walks() {
        let a = fixture();
        let mut eval = IncrementalEvaluator::new(&a, MaintenanceMode::SharedRecompute);
        let v = a.mvpp().interior()[0];
        eval.flip(v);
        eval.flip(v);
        let walks_after_cycle = eval.walks();
        // Re-flipping revisits both memoized frontiers: no new walks.
        eval.flip(v);
        eval.flip(v);
        assert_eq!(eval.walks(), walks_after_cycle);
    }

    #[test]
    fn leaf_flips_do_not_rewalk_queries() {
        let a = fixture();
        let mut eval = IncrementalEvaluator::new(&a, MaintenanceMode::SharedRecompute);
        let before = eval.walks();
        let total = eval.total();
        for leaf in a.mvpp().leaves() {
            assert_eq!(eval.flip(leaf), total, "leaves are already stored");
        }
        assert_eq!(eval.walks(), before);
    }

    #[test]
    fn matches_evaluate_under_incremental_policy() {
        let a = fixture_with(crate::annotate::MaintenancePolicy::Incremental {
            update_fraction: 0.1,
        });
        for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
            let mut eval = IncrementalEvaluator::new(&a, mode);
            let mut reference = NodeSet::with_capacity(a.mvpp().len());
            for v in a.mvpp().interior() {
                reference.toggle(v);
                assert_eq!(eval.flip(v), evaluate_set(&a, &reference, mode).total);
            }
        }
    }

    #[test]
    fn delta_policies_match_evaluate_with_policies_exactly() {
        use crate::evaluate::evaluate_set_with_policies;
        for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
            let a = fixture();
            let n = a.mvpp().len();
            let mut eval = IncrementalEvaluator::new(&a, mode);
            let mut m = NodeSet::with_capacity(n);
            let mut delta = NodeSet::with_capacity(n);
            let interior = a.mvpp().interior();
            let mut x = 0xdeadbeefcafef00du64;
            for _ in 0..200 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = interior[(x % interior.len() as u64) as usize];
                if x & 1 == 0 {
                    m.toggle(v);
                    eval.flip(v);
                } else {
                    delta.toggle(v);
                    eval.set_delta_policies(&delta);
                }
                let want = evaluate_set_with_policies(&a, &m, &delta, mode);
                assert_eq!(eval.total(), want.total, "{mode:?} diverged");
                assert_eq!(eval.breakdown(), want);
            }
        }
    }

    #[test]
    fn policy_changes_do_not_rewalk_queries() {
        let a = fixture();
        let mut eval = IncrementalEvaluator::new(&a, MaintenanceMode::SharedRecompute);
        let interior = a.mvpp().interior();
        for v in &interior {
            eval.flip(*v);
        }
        let walks = eval.walks();
        let delta = NodeSet::from_ids(a.mvpp().len(), interior.iter().copied());
        eval.set_delta_policies(&delta);
        assert_eq!(eval.walks(), walks, "policy flips touch only maintenance");
        eval.set_delta_policies(&NodeSet::with_capacity(a.mvpp().len()));
        assert_eq!(eval.walks(), walks);
    }

    #[test]
    fn set_frontier_matches_evaluate() {
        let a = fixture();
        let mut eval = IncrementalEvaluator::new(&a, MaintenanceMode::SharedRecompute);
        let interior = a.mvpp().interior();
        let m = NodeSet::from_ids(a.mvpp().len(), interior.iter().copied().step_by(2));
        eval.set_frontier(&m);
        let want = evaluate_set(&a, &m, MaintenanceMode::SharedRecompute);
        assert_eq!(eval.total(), want.total);
        assert_eq!(eval.frontier(), &m);
    }
}
