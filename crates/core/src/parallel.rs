//! Scoped-thread fan-out helpers (std-only; no external dependencies).
//!
//! All helpers preserve sequential semantics exactly: results come back in
//! input order, and the reduction the callers apply is the same one the
//! sequential loop would apply, so a parallel run is bit-identical to a
//! sequential one.

/// Resolves a `parallelism` knob: `0` means "all available cores", and the
/// result is clamped to the number of work items (never below 1).
pub(crate) fn threads_for(requested: usize, work_items: usize) -> usize {
    let auto = if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    };
    auto.min(work_items).max(1)
}

/// Maps `f` over `items` on up to `threads` scoped threads, returning results
/// in input order. With `threads <= 1` this is a plain sequential map; the
/// output is identical either way.
pub(crate) fn ordered_map<T, R, F>(items: Vec<T>, threads: usize, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<(usize, T)>> = Vec::with_capacity(threads);
    let mut indexed = items.into_iter().enumerate();
    loop {
        let chunk: Vec<(usize, T)> = indexed.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    // Chunks are contiguous and spawned in order, so concatenating the
    // per-chunk results in spawn order restores the input order.
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || chunk.into_iter().map(|(i, t)| f(i, t)).collect::<Vec<R>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        let doubled = ordered_map(items.clone(), 8, &|i, x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let seq = ordered_map(items.clone(), 1, &|_, x| x * x + 1);
        let par = ordered_map(items, 5, &|_, x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn threads_for_clamps() {
        assert_eq!(threads_for(4, 100), 4);
        assert_eq!(threads_for(4, 2), 2);
        assert_eq!(threads_for(0, 0), 1);
        assert!(threads_for(0, 64) >= 1);
    }
}
