//! A dense bitset over an MVPP's [`NodeId`] space.
//!
//! [`NodeId`]s index into a contiguous node vector, so a materialization set
//! or visited set is a handful of `u64` words instead of a heap-allocated
//! `BTreeSet`. Unions — the hot operation in shared-maintenance evaluation —
//! become word-wise ORs, and iteration yields ids in ascending order, exactly
//! matching `BTreeSet<NodeId>` iteration so cost summation orders (and hence
//! exact floating-point results) are preserved.

use std::collections::BTreeSet;
use std::fmt;

use crate::mvpp::NodeId;

/// A set of [`NodeId`]s stored as a dense bitset.
///
/// All sets over one MVPP share the same capacity (the MVPP's node count);
/// operations between sets of different capacities are supported by treating
/// missing high words as zero.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// An empty set sized for a DAG of `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// An empty set holding ids `0..capacity` of `mvpp`-sized DAGs.
    pub fn for_mvpp(mvpp: &crate::mvpp::Mvpp) -> Self {
        Self::with_capacity(mvpp.len())
    }

    /// Builds a set from any iterator of ids.
    pub fn from_ids<I: IntoIterator<Item = NodeId>>(capacity: usize, ids: I) -> Self {
        let mut s = Self::with_capacity(capacity);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `id`; returns whether it was newly added.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let (w, bit) = (id.0 / 64, 1u64 << (id.0 % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let newly = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.len += newly as usize;
        newly
    }

    /// Removes `id`; returns whether it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let (w, bit) = (id.0 / 64, 1u64 << (id.0 % 64));
        let present = self.words.get(w).is_some_and(|word| word & bit != 0);
        if present {
            self.words[w] &= !bit;
            self.len -= 1;
        }
        present
    }

    /// Toggles `id`; returns whether it is present afterwards.
    pub fn toggle(&mut self, id: NodeId) -> bool {
        if self.insert(id) {
            true
        } else {
            self.remove(id);
            false
        }
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: NodeId) -> bool {
        self.words
            .get(id.0 / 64)
            .is_some_and(|word| word & (1u64 << (id.0 % 64)) != 0)
    }

    /// Removes all ids.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Adds every id of `other` (word-wise OR).
    pub fn union_with(&mut self, other: &NodeSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut len = 0;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
            len += w.count_ones() as usize;
        }
        for w in &self.words[other.words.len()..] {
            len += w.count_ones() as usize;
        }
        self.len = len;
    }

    /// Keeps only ids also in `other` (word-wise AND).
    pub fn intersect_with(&mut self, other: &NodeSet) {
        let mut len = 0;
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= other.words.get(i).copied().unwrap_or(0);
            len += w.count_ones() as usize;
        }
        self.len = len;
    }

    /// Whether the two sets share at least one id.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Ids in ascending order — the same order `BTreeSet<NodeId>` iterates.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(NodeId(i * 64 + bit))
            })
        })
    }

    /// The raw words, low ids first — a cheap memoization key.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites `self` with `other`'s contents, reusing the allocation —
    /// an allocation-free alternative to `*self = other.clone()`.
    pub fn copy_from(&mut self, other: &NodeSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// Converts to the `BTreeSet` form used at API boundaries.
    pub fn to_btree(&self) -> BTreeSet<NodeId> {
        self.iter().collect()
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(ids: I) -> Self {
        let mut s = NodeSet::default();
        for id in ids {
            s.insert(id);
        }
        s
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, ids: I) {
        for id in ids {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[usize]) -> Vec<NodeId> {
        xs.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::with_capacity(100);
        assert!(s.insert(NodeId(3)));
        assert!(!s.insert(NodeId(3)));
        assert!(s.insert(NodeId(99)));
        assert!(s.contains(NodeId(3)) && s.contains(NodeId(99)));
        assert!(!s.contains(NodeId(4)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(NodeId(3)));
        assert!(!s.remove(NodeId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn toggle_flips_membership() {
        let mut s = NodeSet::with_capacity(10);
        assert!(s.toggle(NodeId(7)));
        assert!(s.contains(NodeId(7)));
        assert!(!s.toggle(NodeId(7)));
        assert!(!s.contains(NodeId(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_matches_btreeset_order() {
        let picked = ids(&[70, 3, 64, 0, 127, 65]);
        let s = NodeSet::from_ids(128, picked.iter().copied());
        let b: BTreeSet<NodeId> = picked.into_iter().collect();
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            b.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn union_and_intersection() {
        let a = NodeSet::from_ids(128, ids(&[1, 64, 100]));
        let b = NodeSet::from_ids(128, ids(&[2, 64]));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), ids(&[1, 2, 64, 100]));
        assert_eq!(u.len(), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), ids(&[64]));
        assert!(a.intersects(&b));
        assert!(!NodeSet::with_capacity(128).intersects(&a));
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut s = NodeSet::with_capacity(1);
        s.insert(NodeId(500));
        assert!(s.contains(NodeId(500)));
        let mut other = NodeSet::with_capacity(1000);
        other.insert(NodeId(900));
        s.union_with(&other);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn copy_from_replaces_contents() {
        let a = NodeSet::from_ids(128, ids(&[1, 64, 100]));
        let mut b = NodeSet::from_ids(256, ids(&[3, 200]));
        b.copy_from(&a);
        assert_eq!(b, a);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn round_trips_btreeset() {
        let picked: BTreeSet<NodeId> = ids(&[5, 9, 63, 64]).into_iter().collect();
        let s: NodeSet = picked.iter().copied().collect();
        assert_eq!(s.to_btree(), picked);
    }
}
