//! The paper's Figure-4 algorithm: generating multiple candidate MVPPs by
//! merging individually-optimal query plans on shared join patterns, one
//! candidate per rotation of the merge order.
//!
//! The steps map to the paper as follows:
//!
//! 1. an optimal plan per query (`mvdesign-optimizer`'s [`Planner`]);
//! 2. pull selects/projects above the joins ([`mvdesign_optimizer::pull_up`]);
//! 3. order plans by `fq(q)·Ca(q)` descending;
//! 4. merge plans into the current MVPP, reusing any existing join node
//!    whose relations and join conditions agree with the incoming plan
//!    (step 4.3's "divide the leaf nodes into subsets already joined in
//!    MVPP(n)");
//! 5. (and 6.) push selections (as per-leaf *disjunctions* across queries)
//!    and projections (as per-leaf attribute *unions*, plus join attributes)
//!    back down to the leaves; each query re-applies its own predicate above
//!    its join subtree when the shared leaf filter is weaker than its own.
//!
//! With `k` queries, rotating the merge order yields `k` MVPPs (Figure 6);
//! [`crate::Designer`] then runs view selection on each and keeps the best.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use mvdesign_algebra::{AggExpr, AttrRef, Expr, JoinCondition, Predicate, Query, RelName};
use mvdesign_cost::{CostEstimator, CostModel};
use mvdesign_optimizer::{pull_up, Planner};

use crate::mvpp::{Mvpp, NodeId};
use crate::workload::Workload;

/// Tuning knobs for [`generate_mvpps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerateConfig {
    /// Maximum number of rotations (candidate MVPPs). The paper generates
    /// one per query; large workloads cap this.
    pub max_rotations: usize,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        Self { max_rotations: 8 }
    }
}

/// A query reduced to the paper's "pushed-up" merge form.
#[derive(Debug, Clone)]
struct PreparedQuery {
    name: String,
    fq: f64,
    bases: BTreeSet<RelName>,
    conds: Vec<(AttrRef, AttrRef)>,
    /// Single-relation conjunctions, per relation.
    per_rel: BTreeMap<RelName, Predicate>,
    /// Conjuncts spanning several relations.
    residual: Vec<Predicate>,
    projection: Option<Vec<AttrRef>>,
    /// Final aggregation, when the query groups (`γ` re-applied above the
    /// shared joins, like the projection).
    aggregate: Option<(Vec<AttrRef>, Vec<AggExpr>)>,
    /// Which attributes the query ultimately needs from the base relations —
    /// `None` means all of them (a `SELECT *`).
    needs: Option<Vec<AttrRef>>,
    /// `fq · Ca(optimal plan)` — the ordering key of Figure 4, step 3.
    cost_key: f64,
    /// Set when the plan is not in SPJ normal form (e.g. an aggregation
    /// nested under a join): the merge machinery cannot restructure such a
    /// plan safely, so it is inserted verbatim and shares only via
    /// common-subexpression interning.
    raw: Option<Arc<Expr>>,
}

/// The shared, workload-wide leaf expressions (Figure 4, steps 5–6): each
/// base relation filtered by the *disjunction* of every query's predicate on
/// it and projected to the *union* of every needed attribute.
#[derive(Debug, Clone)]
struct SharedLeaves {
    exprs: BTreeMap<RelName, Arc<Expr>>,
    filters: BTreeMap<RelName, Predicate>,
}

/// Generates up to `k` candidate MVPPs for the workload (Figure 4).
pub fn generate_mvpps<M: CostModel>(
    workload: &Workload,
    est: &CostEstimator<'_, M>,
    planner: &Planner,
    config: GenerateConfig,
) -> Vec<Mvpp> {
    let mut prepared: Vec<PreparedQuery> = workload
        .queries()
        .iter()
        .map(|q| prepare(q, est, planner))
        .collect();
    // Step 3: descending fq·Ca, name as deterministic tie-break.
    prepared.sort_by(|a, b| {
        b.cost_key
            .total_cmp(&a.cost_key)
            .then_with(|| a.name.cmp(&b.name))
    });
    let leaves = shared_leaves(&prepared, est);
    let k = prepared.len().min(config.max_rotations).max(1);
    (0..k)
        .map(|r| {
            let order: Vec<&PreparedQuery> = prepared
                .iter()
                .cycle()
                .skip(r)
                .take(prepared.len())
                .collect();
            merge_prepared(&order, &leaves, est)
        })
        .collect()
}

/// Merges the workload's queries into a single MVPP in the given name
/// order — the paper's inner merge (Figure 4, step 4) exposed for tests and
/// figure reproduction. Unknown names are ignored.
pub fn merge_queries<M: CostModel>(
    workload: &Workload,
    order: &[&str],
    est: &CostEstimator<'_, M>,
    planner: &Planner,
) -> Mvpp {
    let prepared: Vec<PreparedQuery> = order
        .iter()
        .filter_map(|name| workload.query(name))
        .map(|q| prepare(q, est, planner))
        .collect();
    let leaves = shared_leaves(&prepared, est);
    let refs: Vec<&PreparedQuery> = prepared.iter().collect();
    merge_prepared(&refs, &leaves, est)
}

fn prepare<M: CostModel>(
    query: &Query,
    est: &CostEstimator<'_, M>,
    planner: &Planner,
) -> PreparedQuery {
    let optimal = planner.optimize(query.root(), est);
    let cost_key = query.frequency() * est.tree_cost(&optimal);
    let pulled = pull_up(&optimal);
    let raw = if is_pure_join_tree(&pulled.join_tree) {
        None
    } else {
        Some(Arc::clone(&optimal))
    };

    let mut conds = Vec::new();
    flatten_conds(&pulled.join_tree, &mut conds);

    let mut per_rel: BTreeMap<RelName, Vec<Predicate>> = BTreeMap::new();
    let mut residual = Vec::new();
    let conjuncts = match pulled.predicate {
        Predicate::True => Vec::new(),
        Predicate::And(ps) => ps,
        other => vec![other],
    };
    for conjunct in conjuncts {
        let rels: BTreeSet<RelName> = conjunct
            .attrs()
            .iter()
            .map(|a| a.relation.clone())
            .collect();
        if rels.len() == 1 {
            per_rel
                .entry(rels.into_iter().next().expect("len checked"))
                .or_default()
                .push(conjunct);
        } else {
            residual.push(conjunct);
        }
    }

    // What the query needs from the bases: its projection, or — when an
    // aggregation defines the output — the group keys and aggregate inputs.
    let needs = match (&pulled.projection, &pulled.aggregate) {
        (_, Some((group_by, aggs))) => {
            let mut n: Vec<AttrRef> = group_by
                .iter()
                .filter(|a| a.relation.as_str() != mvdesign_algebra::AGG_RELATION)
                .cloned()
                .collect();
            n.extend(aggs.iter().filter_map(|a| a.input.clone()));
            Some(n)
        }
        (Some(p), None) => Some(p.clone()),
        (None, None) => None,
    };

    PreparedQuery {
        name: query.name().to_string(),
        fq: query.frequency(),
        bases: pulled.join_tree.base_relations(),
        conds,
        per_rel: per_rel
            .into_iter()
            .map(|(r, ps)| (r, Predicate::and(ps)))
            .collect(),
        residual,
        projection: pulled.projection,
        aggregate: pulled.aggregate,
        needs,
        cost_key,
        raw,
    }
}

/// Whether an expression consists of joins over base relations only.
fn is_pure_join_tree(expr: &Arc<Expr>) -> bool {
    match &**expr {
        Expr::Base(_) => true,
        Expr::Join { left, right, .. } => is_pure_join_tree(left) && is_pure_join_tree(right),
        _ => false,
    }
}

fn flatten_conds(expr: &Arc<Expr>, out: &mut Vec<(AttrRef, AttrRef)>) {
    if let Expr::Join { left, right, on } = &**expr {
        out.extend(on.pairs().iter().cloned());
        flatten_conds(left, out);
        flatten_conds(right, out);
    }
}

fn shared_leaves<M: CostModel>(
    prepared: &[PreparedQuery],
    est: &CostEstimator<'_, M>,
) -> SharedLeaves {
    let catalog = est.cardinalities().catalog();
    let mut filters: BTreeMap<RelName, Predicate> = BTreeMap::new();
    let mut needed: BTreeMap<RelName, Option<BTreeSet<AttrRef>>> = BTreeMap::new();

    // Raw (non-SPJ) plans keep their own operators; they neither contribute
    // to nor consume the shared leaves.
    let prepared: Vec<&PreparedQuery> = prepared.iter().filter(|q| q.raw.is_none()).collect();
    for rel in prepared.iter().flat_map(|q| q.bases.iter()) {
        // Figure 4, step 5: the leaf filter is the disjunction of every
        // query's selection on this relation; a query with no selection
        // forces the filter to True.
        let mut alternatives = Vec::new();
        let mut unconstrained = false;
        for q in prepared.iter().filter(|q| q.bases.contains(rel)) {
            match q.per_rel.get(rel) {
                Some(p) => alternatives.push(p.clone()),
                None => unconstrained = true,
            }
        }
        let filter = if unconstrained {
            Predicate::True
        } else {
            Predicate::or(alternatives)
        };
        filters.insert(rel.clone(), filter);

        // Figure 4, step 6: union of projected attributes plus predicate and
        // join attributes. `None` means "all attributes" (a query without a
        // projection).
        let entry = needed
            .entry(rel.clone())
            .or_insert_with(|| Some(BTreeSet::new()));
        for q in prepared.iter().filter(|q| q.bases.contains(rel)) {
            let Some(set) = entry else { break };
            match &q.needs {
                None => {
                    *entry = None;
                    break;
                }
                Some(attrs) => {
                    set.extend(attrs.iter().filter(|a| a.relation == *rel).cloned());
                }
            }
        }
        if let Some(set) = entry {
            for q in prepared.iter().filter(|q| q.bases.contains(rel)) {
                if let Some(p) = q.per_rel.get(rel) {
                    set.extend(p.attrs().into_iter().cloned());
                }
                for p in &q.residual {
                    set.extend(
                        p.attrs()
                            .into_iter()
                            .filter(|a| a.relation == *rel)
                            .cloned(),
                    );
                }
                for (a, b) in &q.conds {
                    for side in [a, b] {
                        if side.relation == *rel {
                            set.insert(side.clone());
                        }
                    }
                }
            }
        }
    }

    let mut exprs = BTreeMap::new();
    for (rel, filter) in &filters {
        let mut e = Expr::select(Expr::base(rel.clone()), filter.clone());
        if let Some(Some(attrs)) = needed.get(rel) {
            let full_arity = catalog.schema(rel.as_str()).map(|s| s.arity());
            if full_arity.is_some_and(|n| attrs.len() < n) && !attrs.is_empty() {
                e = Expr::project(e, attrs.iter().cloned());
            }
        }
        exprs.insert(rel.clone(), e);
    }
    SharedLeaves { exprs, filters }
}

/// Figure 4, step 4: merge the prepared plans in order over shared leaves.
fn merge_prepared<M: CostModel>(
    order: &[&PreparedQuery],
    leaves: &SharedLeaves,
    est: &CostEstimator<'_, M>,
) -> Mvpp {
    let mut mvpp = Mvpp::new();
    for q in order {
        let expr = build_query_expr(q, leaves, &mvpp, est);
        mvpp.insert_query(q.name.clone(), q.fq, &expr);
    }
    mvpp
}

fn build_query_expr<M: CostModel>(
    q: &PreparedQuery,
    leaves: &SharedLeaves,
    mvpp: &Mvpp,
    est: &CostEstimator<'_, M>,
) -> Arc<Expr> {
    if let Some(raw) = &q.raw {
        return Arc::clone(raw);
    }
    // Step 4.3.1–4.3.2: cover the query's relations with existing join
    // nodes whose relations AND conditions agree, largest first.
    let q_conds: BTreeSet<(AttrRef, AttrRef)> = q.conds.iter().cloned().collect();
    // Node ids of the shared leaf expressions in this MVPP (`None` while a
    // leaf's class has no vertex yet). Computed once so the per-node leaf
    // check below compares interned ids instead of building key strings.
    let leaf_nodes: BTreeMap<&RelName, Option<NodeId>> = leaves
        .exprs
        .iter()
        .map(|(rel, e)| (rel, mvpp.find(e)))
        .collect();
    let mut candidates: Vec<(BTreeSet<RelName>, Arc<Expr>)> = Vec::new();
    for node in mvpp.nodes() {
        if !matches!(&**node.expr(), Expr::Join { .. }) {
            continue;
        }
        let bases = node.expr().base_relations();
        if !bases.is_subset(&q.bases) {
            continue;
        }
        let mut node_conds = Vec::new();
        flatten_conds(node.expr(), &mut node_conds);
        let node_conds: BTreeSet<_> = node_conds.into_iter().collect();
        let q_local: BTreeSet<_> = q_conds
            .iter()
            .filter(|(a, b)| bases.contains(&a.relation) && bases.contains(&b.relation))
            .cloned()
            .collect();
        if node_conds != q_local {
            continue;
        }
        // The node must be built over this workload's shared leaves.
        if !join_leaves_match(node.expr(), mvpp, &leaf_nodes) {
            continue;
        }
        candidates.push((bases, Arc::clone(node.expr())));
    }
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0.len()));

    let mut covered: BTreeSet<RelName> = BTreeSet::new();
    let mut pieces: Vec<(BTreeSet<RelName>, Arc<Expr>)> = Vec::new();
    for (bases, expr) in candidates {
        if bases.len() < 2 || !bases.is_disjoint(&covered) {
            continue;
        }
        covered.extend(bases.iter().cloned());
        pieces.push((bases, expr));
    }
    for rel in &q.bases {
        if !covered.contains(rel) {
            let leaf = leaves
                .exprs
                .get(rel)
                .cloned()
                .unwrap_or_else(|| Expr::base(rel.clone()));
            pieces.push(([rel.clone()].into(), leaf));
        }
    }

    // Step 4.3.2: join the pieces — connected pairs first, cheapest first.
    // (pair indices, op cost, connectedness, joined expr, covered bases)
    type BestJoin = (usize, usize, f64, bool, Arc<Expr>, BTreeSet<RelName>);
    while pieces.len() > 1 {
        let mut best: Option<BestJoin> = None;
        for i in 0..pieces.len() {
            for j in (i + 1)..pieces.len() {
                let pairs: Vec<(AttrRef, AttrRef)> = q_conds
                    .iter()
                    .filter(|(a, b)| {
                        (pieces[i].0.contains(&a.relation) && pieces[j].0.contains(&b.relation))
                            || (pieces[j].0.contains(&a.relation)
                                && pieces[i].0.contains(&b.relation))
                    })
                    .cloned()
                    .collect();
                let connected = !pairs.is_empty();
                let expr = Expr::join(
                    Arc::clone(&pieces[i].1),
                    Arc::clone(&pieces[j].1),
                    JoinCondition::new(pairs),
                );
                let cost = est.op_cost(&expr);
                let better = match &best {
                    None => true,
                    Some((.., bcost, bconn, _, _)) => (connected, -cost) > (*bconn, -*bcost),
                };
                if better {
                    let mut bases = pieces[i].0.clone();
                    bases.extend(pieces[j].0.iter().cloned());
                    best = Some((i, j, cost, connected, expr, bases));
                }
            }
        }
        let (i, j, _, _, expr, bases) = best.expect("pieces.len() > 1");
        pieces.swap_remove(j);
        pieces.swap_remove(i);
        pieces.push((bases, expr));
    }
    let mut out = pieces.pop().map(|(_, e)| e).expect("at least one piece");

    // Re-apply the query's own predicate where the shared leaf filter is
    // weaker than its own conjunction, plus every multi-relation conjunct.
    let mut reapply: Vec<Predicate> = Vec::new();
    for (rel, pred) in &q.per_rel {
        if leaves.filters.get(rel) != Some(pred) {
            reapply.push(pred.clone());
        }
    }
    reapply.extend(q.residual.iter().cloned());
    out = Expr::select(out, Predicate::and(reapply));
    if let Some((group_by, aggs)) = &q.aggregate {
        out = Expr::aggregate(out, group_by.clone(), aggs.clone());
    }
    if let Some(attrs) = &q.projection {
        out = Expr::project(out, attrs.clone());
    }
    out
}

/// Checks that every non-join subtree of a join node is one of the shared
/// leaf expressions (so reusing the node cannot change any query's result).
///
/// Equality is decided by interned identity: a subtree of an MVPP node is
/// itself an MVPP node, so it matches the shared leaf exactly when both map
/// to the same vertex.
fn join_leaves_match(
    expr: &Arc<Expr>,
    mvpp: &Mvpp,
    leaf_nodes: &BTreeMap<&RelName, Option<NodeId>>,
) -> bool {
    match &**expr {
        Expr::Join { left, right, .. } => {
            join_leaves_match(left, mvpp, leaf_nodes) && join_leaves_match(right, mvpp, leaf_nodes)
        }
        other => {
            let bases = other.base_relations();
            let Some(rel) = bases.iter().next() else {
                return false;
            };
            match leaf_nodes.get(rel) {
                Some(&Some(leaf)) => mvpp.find(expr) == Some(leaf),
                _ => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::parse_query_with;
    use mvdesign_catalog::{AttrType, Catalog, RelationStats};
    use mvdesign_cost::{EstimationMode, PaperCostModel};

    /// The paper's Table 1 catalog (full five relations).
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Pd")
            .attr("Pid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Did", AttrType::Int)
            .records(30_000.0)
            .blocks(3_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("Div")
            .attr("Did", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .update_frequency(1.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        c.relation("Ord")
            .attr("Pid", AttrType::Int)
            .attr("Cid", AttrType::Int)
            .attr("quantity", AttrType::Int)
            .attr("date", AttrType::Date)
            .records(50_000.0)
            .blocks(6_000.0)
            .update_frequency(1.0)
            .selectivity("quantity", 0.5)
            .selectivity("date", 0.5)
            .finish()
            .unwrap();
        c.relation("Cust")
            .attr("Cid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("city", AttrType::Text)
            .records(20_000.0)
            .blocks(2_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("Pt")
            .attr("Tid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Pid", AttrType::Int)
            .attr("supplier", AttrType::Text)
            .records(80_000.0)
            .blocks(10_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        for (a, b, js) in [
            (("Pd", "Did"), ("Div", "Did"), 1.0 / 5_000.0),
            (("Pt", "Pid"), ("Pd", "Pid"), 1.0 / 30_000.0),
            (("Ord", "Cid"), ("Cust", "Cid"), 1.0 / 40_000.0),
            (("Ord", "Pid"), ("Pd", "Pid"), 1.0 / 30_000.0),
        ] {
            c.set_join_selectivity(AttrRef::new(a.0, a.1), AttrRef::new(b.0, b.1), js)
                .unwrap();
        }
        c.set_size_override(
            ["Pd".into(), "Div".into()],
            RelationStats::new(30_000.0, 5_000.0),
        )
        .unwrap();
        c.set_size_override(
            ["Pd".into(), "Div".into(), "Pt".into()],
            RelationStats::new(80_000.0, 20_000.0),
        )
        .unwrap();
        c.set_size_override(
            ["Ord".into(), "Cust".into()],
            RelationStats::new(25_000.0, 5_000.0),
        )
        .unwrap();
        c.set_size_override(
            ["Pd".into(), "Div".into(), "Ord".into(), "Cust".into()],
            RelationStats::new(25_000.0, 5_000.0),
        )
        .unwrap();
        c
    }

    fn workload(c: &Catalog) -> Workload {
        let q = |name: &str, fq: f64, sql: &str| {
            Query::new(name, fq, parse_query_with(sql, c).unwrap())
        };
        Workload::new([
            q("Q1", 10.0, "SELECT Pd.name FROM Pd, Div WHERE Div.city='LA' AND Pd.Did=Div.Did"),
            q(
                "Q2",
                0.5,
                "SELECT Pt.name FROM Pd, Pt, Div WHERE Div.city='LA' AND Pd.Did=Div.Did AND Pt.Pid=Pd.Pid",
            ),
            q(
                "Q3",
                0.8,
                "SELECT Cust.name, Pd.name, quantity FROM Pd, Div, Ord, Cust \
                 WHERE Div.city='LA' AND Pd.Did=Div.Did AND Pd.Pid=Ord.Pid AND Ord.Cid=Cust.Cid AND date>7/1/96",
            ),
            q(
                "Q4",
                5.0,
                "SELECT Cust.city, date FROM Ord, Cust WHERE quantity>100 AND Ord.Cid=Cust.Cid",
            ),
        ])
        .unwrap()
    }

    #[test]
    fn generates_one_mvpp_per_rotation() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let mvpps = generate_mvpps(
            &workload(&c),
            &est,
            &Planner::new(),
            GenerateConfig::default(),
        );
        assert_eq!(mvpps.len(), 4);
        for m in &mvpps {
            assert_eq!(m.roots().len(), 4);
            assert_eq!(m.leaves().len(), 5);
        }
    }

    #[test]
    fn q1_and_q2_share_the_product_division_join() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let m = merge_queries(&workload(&c), &["Q1", "Q2"], &est, &Planner::new());
        // Find the join over exactly {Pd, Div}: it must serve both queries.
        let shared = m
            .nodes()
            .iter()
            .find(|n| {
                matches!(&**n.expr(), Expr::Join { .. })
                    && n.expr().base_relations().len() == 2
                    && n.expr().base_relations().contains("Pd")
            })
            .expect("Pd⋈Div node exists");
        assert_eq!(m.queries_using(shared.id()).len(), 2);
    }

    #[test]
    fn order_customer_join_is_shared_between_q3_and_q4() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let m = merge_queries(&workload(&c), &["Q4", "Q3"], &est, &Planner::new());
        let oc = m
            .nodes()
            .iter()
            .find(|n| {
                matches!(&**n.expr(), Expr::Join { .. })
                    && n.expr().base_relations() == ["Ord".into(), "Cust".into()].into()
            })
            .expect("Ord⋈Cust node exists");
        assert_eq!(m.queries_using(oc.id()).len(), 2, "dot:\n{}", m.to_dot("m"));
    }

    #[test]
    fn leaf_filters_are_disjunctions() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let m = merge_queries(
            &workload(&c),
            &["Q4", "Q3", "Q2", "Q1"],
            &est,
            &Planner::new(),
        );
        // Ord is filtered by (date>… ∨ quantity>…) at the leaf.
        let ord_sigma = m
            .nodes()
            .iter()
            .find(|n| {
                matches!(&**n.expr(), Expr::Select { input, .. } if input.is_base())
                    && n.expr().base_relations().contains("Ord")
            })
            .expect("σ over Ord exists");
        match &**ord_sigma.expr() {
            Expr::Select { predicate, .. } => {
                assert!(matches!(predicate, Predicate::Or(_)), "got {predicate}");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn queries_reapply_their_own_filters_above_shared_joins() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let m = merge_queries(&workload(&c), &["Q4", "Q3"], &est, &Planner::new());
        // Q4's root subtree must still apply quantity>100 somewhere above
        // the shared (disjunction-filtered) Ord⋈Cust join.
        let (_, _, q4_root) = m
            .roots()
            .iter()
            .find(|(n, _, _)| n == "Q4")
            .expect("Q4 root");
        let has_quantity = format!("{}", m.node(*q4_root).expr()).contains("Ord.quantity>100");
        assert!(has_quantity, "Q4 expr: {}", m.node(*q4_root).expr());
    }

    #[test]
    fn rotations_produce_structurally_different_dags() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let mvpps = generate_mvpps(
            &workload(&c),
            &est,
            &Planner::new(),
            GenerateConfig::default(),
        );
        let sizes: BTreeSet<usize> = mvpps.iter().map(Mvpp::len).collect();
        // Not all rotations need differ, but the machinery must not collapse
        // everything into one shape unless the workload forces it; here at
        // least the roots' expressions differ across some rotation.
        let first_keys: Vec<String> = mvpps[0]
            .roots()
            .iter()
            .map(|(_, _, id)| mvpps[0].node(*id).expr().semantic_key())
            .collect();
        let any_different = mvpps.iter().skip(1).any(|m| {
            m.roots()
                .iter()
                .map(|(_, _, id)| m.node(*id).expr().semantic_key())
                .collect::<Vec<_>>()
                != first_keys
        });
        assert!(any_different || sizes.len() > 1 || mvpps.len() == 1);
    }

    #[test]
    fn rotation_cap_limits_candidates() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let mvpps = generate_mvpps(
            &workload(&c),
            &est,
            &Planner::new(),
            GenerateConfig { max_rotations: 2 },
        );
        assert_eq!(mvpps.len(), 2);
    }
}
