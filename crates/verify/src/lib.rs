//! Cross-crate correctness-audit harness (C-VERIFY).
//!
//! The core audit layer ([`mvdesign_core::audit_annotated`]) can only
//! cross-check what lives *inside* the core crate. This harness layers the
//! remaining two oracles on top:
//!
//! - **distributed differential** ([`check_distributed_zero_link`]): at zero
//!   link cost the shipping-aware [`DistributedEvaluator`] must reproduce the
//!   core [`evaluate`] bit-for-bit, for both maintenance modes and both
//!   filter-shipping strategies;
//! - **executable semantics** ([`check_semantics`]): the merged, pushed-down
//!   MVPP plan of every query — and its rewrite against the materialized
//!   views — must return exactly the rows of the original plan when run on
//!   `engine`-generated data. The original plan runs on the preserved
//!   tuple-at-a-time engine (`mvdesign_engine::row_reference`) while the
//!   merged and rewritten plans run on the columnar batch engine, so the
//!   check doubles as a batch ≡ row differential test on every audit;
//! - **delta maintenance** ([`check_delta_refresh`]): folding captured
//!   append deltas into a stored view
//!   ([`mvdesign_engine::refresh_view_delta`]) must reproduce, bag-exactly,
//!   a full recompute of the view on the grown database — across several
//!   rounds of deterministic appends of varying size, including empty ones.
//!
//! [`audit_scenario`] bundles everything (structural validation, rewrite
//! coverage, the three-way cost differential over deterministic random
//! materialization choices, the greedy-trace replay, prune-safety and the
//! executable oracle) into a single pass over one catalog + workload, and
//! [`audit_standard_scenarios`] runs that pass over the paper example, a star
//! schema, TPC-H lite and every degenerate case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvdesign_catalog::Catalog;
use mvdesign_core::{
    audit_annotated, check_query_rewrite, evaluate, generate_mvpps, greedy_no_prune, AnnotatedMvpp,
    AuditReport, GenerateConfig, GreedySelection, MaintenanceMode, MaintenancePolicy, NodeId,
    UpdateWeighting, ViewCatalog, Workload,
};
use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign_distributed::{DistributedEvaluator, FilterShipping, Placement, Topology};
use mvdesign_engine::{
    execute, materialize_view, refresh_view_delta, split_appends, ExecContext, Generator,
    GeneratorConfig, JoinAlgo, Table,
};
use mvdesign_optimizer::Planner;
use mvdesign_workload::{
    degenerate_scenarios, paper_example, tpch_lite, Scenario, StarSchema, StarSchemaConfig,
};

/// Materialization choices used by the differential oracles: nothing,
/// everything, every singleton, the greedy's own pick, and `extra`
/// deterministic random subsets.
pub fn standard_choices(a: &AnnotatedMvpp, seed: u64, extra: usize) -> Vec<BTreeSet<NodeId>> {
    let interior = a.mvpp().interior();
    let mut choices: Vec<BTreeSet<NodeId>> = Vec::new();
    choices.push(BTreeSet::new());
    choices.push(interior.iter().copied().collect());
    for v in &interior {
        choices.push([*v].into());
    }
    let (greedy_m, _) = GreedySelection::new().run(a);
    choices.push(greedy_m);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..extra {
        let m: BTreeSet<NodeId> = interior
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.5))
            .collect();
        choices.push(m);
    }
    choices
}

/// At zero link cost the distributed evaluator adds no shipping anywhere, so
/// its breakdown must equal the core [`evaluate`] **bit-for-bit** on every
/// choice, maintenance mode and filter-shipping strategy.
pub fn check_distributed_zero_link(a: &AnnotatedMvpp, choices: &[BTreeSet<NodeId>]) -> AuditReport {
    let mut report = AuditReport::new();
    let topo = Topology::uniform(3, 0.0);
    let warehouse = topo.site(0).expect("site 0 exists");
    let placement = Placement::new(warehouse);
    for shipping in [FilterShipping::AtWarehouse, FilterShipping::AtSource] {
        let eval = DistributedEvaluator::new(a, topo.clone(), placement.clone(), shipping);
        for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
            for m in choices {
                let core = evaluate(a, m, mode);
                let dist = eval.evaluate(m, mode);
                for (field, x, y) in [
                    (
                        "query_processing",
                        core.query_processing,
                        dist.query_processing,
                    ),
                    ("maintenance", core.maintenance, dist.maintenance),
                    ("total", core.total, dist.total),
                ] {
                    if x.to_bits() != y.to_bits() {
                        report.push(
                            "distributed-zero-link",
                            format!(
                                "{shipping:?}/{mode:?}: distributed {field} = {y} != core {x} for {m:?}"
                            ),
                        );
                    }
                }
            }
        }
    }
    report
}

/// Maximum relative total-cost loss that [`check_prune_safety`] tolerates
/// for the pruned greedy versus the no-prune reference.
///
/// Empirically measured headroom: the worst loss observed across the
/// standard battery and a 300-seed random star-schema sweep is ~0.5%
/// (incremental maintenance on the paper workload); under pure recompute the
/// worst random-workload loss is ~8·10⁻⁵ relative. A cross-branch pruning
/// bug — the class this tripwire exists for — skips genuinely profitable
/// candidates and shows up orders of magnitude above this bound.
pub const DEFAULT_PRUNE_LOSS_TOLERANCE: f64 = 1e-2;

/// Branch pruning must never make the design *meaningfully* worse: the
/// pruned run's total cost may exceed the no-prune run's by at most a
/// relative [`DEFAULT_PRUNE_LOSS_TOLERANCE`].
///
/// The paper's §4.3 argument is a heuristic, not a theorem, even under pure
/// recompute maintenance: rejecting `v` prunes same-branch nodes that can
/// still carry marginal positive savings (on the paper workload the no-prune
/// run materializes one exactly cost-neutral extra node; on TPC-H lite it
/// saves ~3 blocks out of 10¹¹; on random star workloads losses up to
/// ~8·10⁻⁵ relative occur, and once the two runs diverge the divergence
/// cascades — either run can end up with nodes the other never considered).
/// Under incremental maintenance the delta-apply scan term breaks `Cm = Ca`
/// and the gap widens to ~0.5% on the paper workload. The only *sound*
/// invariant is structural — every pruned node lies on the rejected node's
/// own branch — and that is verified bit-exactly by
/// [`mvdesign_core::check_greedy_trace`]. This check is the complementary
/// bounded-loss tripwire: a cross-branch pruning bug skips genuinely
/// profitable candidates and regresses total cost far beyond the tolerance.
pub fn check_prune_safety(a: &AnnotatedMvpp) -> AuditReport {
    check_prune_safety_with(a, DEFAULT_PRUNE_LOSS_TOLERANCE)
}

/// [`check_prune_safety`] with an explicit relative cost-loss tolerance.
pub fn check_prune_safety_with(a: &AnnotatedMvpp, tolerance: f64) -> AuditReport {
    let mut report = AuditReport::new();
    let (with_prune, _) = GreedySelection::new().run(a);
    let (without_prune, _) = greedy_no_prune(a);
    // Compare only under the objective the greedy actually descends
    // (Figure 9's shared-recompute total). Both runs optimize that quantity;
    // under any *other* mode the two selections are equally un-optimized and
    // their gap carries no information about pruning.
    let mode = MaintenanceMode::SharedRecompute;
    let cost_with = evaluate(a, &with_prune, mode).total;
    let cost_without = evaluate(a, &without_prune, mode).total;
    let slack = tolerance * cost_without.abs().max(1.0);
    if cost_with > cost_without + slack {
        report.push(
            "greedy-prune-safety",
            format!(
                "{mode:?}: pruned run chose {with_prune:?} (cost {cost_with}), \
                 worse than no-prune {without_prune:?} (cost {cost_without}) \
                 beyond relative tolerance {tolerance:e}"
            ),
        );
    }
    report
}

/// Runs every query's merged MVPP plan — and, when a design is given, its
/// rewrite against the materialized views — on generated data and checks the
/// rows equal the original plan's, after canonicalization.
pub fn check_semantics(
    catalog: &Catalog,
    workload: &Workload,
    a: &AnnotatedMvpp,
    views: Option<&ViewCatalog>,
    gen_config: GeneratorConfig,
) -> AuditReport {
    let mut report = AuditReport::new();
    let mut db = Generator::with_config(gen_config).database(catalog);
    if let Some(views) = views {
        for (name, definition) in views.views() {
            if let Err(e) = materialize_view(name.clone(), definition, &mut db) {
                report.push(
                    "semantics",
                    format!("view {name} failed to materialize: {e}"),
                );
                return report;
            }
        }
    }

    let mvpp = a.mvpp();
    for q in workload.queries() {
        let Some((_, _, root)) = mvpp.roots().iter().find(|(n, _, _)| n == q.name()) else {
            report.push("semantics", format!("query {} has no MVPP root", q.name()));
            continue;
        };
        let merged = mvpp.node(*root).expr();
        // The expected side runs on the tuple-at-a-time reference engine, so
        // this check is *differential*: an engine bug cannot cancel out of
        // both sides of the comparison.
        let expected = match mvdesign_engine::row_reference::execute(q.root(), &db) {
            Ok(t) => t.canonicalized(),
            Err(e) => {
                report.push("semantics", format!("{} original fails: {e}", q.name()));
                continue;
            }
        };
        let got = match execute(merged, &db) {
            Ok(t) => t.canonicalized(),
            Err(e) => {
                report.push("semantics", format!("{} merged plan fails: {e}", q.name()));
                continue;
            }
        };
        if expected.rows() != got.rows() {
            report.push(
                "semantics",
                format!(
                    "{}: merged plan returns {} row(s), original {}, and they differ",
                    q.name(),
                    got.rows().len(),
                    expected.rows().len()
                ),
            );
        }
        if let Some(views) = views {
            let rewritten = views.rewrite(merged);
            match execute(&rewritten, &db) {
                Ok(t) => {
                    if expected.rows() != t.canonicalized().rows() {
                        report.push(
                            "semantics",
                            format!("{}: view rewrite changes the answer", q.name()),
                        );
                    }
                }
                Err(e) => {
                    report.push("semantics", format!("{} rewrite fails: {e}", q.name()));
                }
            }
        }
    }
    report
}

/// Differential oracle for incremental view maintenance: folding captured
/// append deltas into each stored view must reproduce, bag-exactly, a full
/// recompute of the view on the grown database.
///
/// Appends are synthesized deterministically by re-running the data
/// generator with a round-derived seed and taking a prefix of each
/// relation's twin rows, so arbitrary scenario schemas (int, date and
/// dictionary-encoded text columns) are exercised without hand-written
/// fixtures. Rounds chain: round `r` appends on top of round `r-1`'s
/// database and folds into the view state round `r-1` left behind, with the
/// per-relation append size cycling through zero (a no-op delta) up to the
/// whole twin table. Views whose maintenance plan falls back to recompute
/// (deletions through joins, non-foldable aggregates) are rebuilt and keep
/// participating in later rounds.
pub fn check_delta_refresh(
    catalog: &Catalog,
    views: &ViewCatalog,
    gen_config: GeneratorConfig,
    rounds: usize,
) -> AuditReport {
    let mut report = AuditReport::new();
    let mut db = Generator::with_config(gen_config).database(catalog);
    let mut stored = Vec::new();
    for (name, definition) in views.views() {
        match execute(definition, &db) {
            Ok(t) => stored.push((name.clone(), definition, t.into_batch())),
            Err(e) => {
                report.push("delta-refresh", format!("view {name} fails to build: {e}"));
                return report;
            }
        }
    }
    let base_names: Vec<_> = db.iter().map(|(n, _)| n.clone()).collect();
    let ctx = ExecContext::default();

    for round in 0..rounds {
        let snapshot: std::collections::BTreeMap<_, _> =
            db.iter().map(|(n, t)| (n.clone(), t.len())).collect();
        let twin = Generator::with_config(GeneratorConfig {
            seed: gen_config.seed ^ (0xD5 + round as u64),
            ..gen_config
        })
        .database(catalog);
        for (i, name) in base_names.iter().enumerate() {
            let Some(src) = twin.table(name.as_str()) else {
                continue;
            };
            let take = src.len() * ((round + i) % 4) / 3;
            if take == 0 {
                continue;
            }
            let rows = src.rows()[..take.min(src.len())].to_vec();
            db.table_mut(name.as_str())
                .expect("base table exists")
                .extend_rows(rows);
        }

        let (old, deltas) = split_appends(&db, &snapshot);
        for (name, definition, batch) in stored.iter_mut() {
            let recomputed = match execute(definition, &db) {
                Ok(t) => t.canonicalized(),
                Err(e) => {
                    report.push("delta-refresh", format!("{name} recompute fails: {e}"));
                    continue;
                }
            };
            match refresh_view_delta(batch, definition, &old, &deltas, JoinAlgo::Hash, &ctx) {
                Ok(Some(fresh)) => {
                    let folded = Table::from_batch(name.clone(), fresh.clone()).canonicalized();
                    if folded.rows() != recomputed.rows() {
                        report.push(
                            "delta-refresh",
                            format!(
                                "{name}: round {round} fold has {} row(s), recompute {}, \
                                 and they differ",
                                folded.len(),
                                recomputed.len()
                            ),
                        );
                    }
                    *batch = fresh;
                }
                Ok(None) => *batch = recomputed.into_batch(),
                Err(e) => report.push("delta-refresh", format!("{name} fold fails: {e}")),
            }
        }
    }
    report
}

/// Configuration for one full audit pass.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Seed for the deterministic random materialization choices.
    pub seed: u64,
    /// Number of random choices on top of the standard ones.
    pub random_choices: usize,
    /// MVPP merge-order rotations to audit.
    pub max_rotations: usize,
    /// Data-generation settings for the executable semantics oracle.
    pub generator: GeneratorConfig,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            seed: 0xA0D1,
            random_choices: 8,
            max_rotations: 2,
            generator: GeneratorConfig {
                seed: 21,
                scale: 0.004,
                max_rows: 300,
            },
        }
    }
}

/// Runs every oracle over one scenario: for each candidate MVPP, structural
/// and schema validation, per-query rewrite coverage, the greedy replay, the
/// three-way in-core cost differential, the distributed differential at zero
/// link cost, prune safety, the executable semantics oracle (with and
/// without the greedy design's materialized views), and the delta-refresh
/// oracle over the greedy design's views.
pub fn audit_scenario(scenario: &Scenario, config: &AuditConfig) -> AuditReport {
    let mut report = AuditReport::new();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let planner = Planner::new();
    let candidates = generate_mvpps(
        &scenario.workload,
        &est,
        &planner,
        GenerateConfig {
            max_rotations: config.max_rotations,
        },
    );

    for mvpp in candidates {
        for q in scenario.workload.queries() {
            if let Some((_, _, root)) = mvpp.roots().iter().find(|(n, _, _)| n == q.name()) {
                let merged = mvpp.node(*root).expr();
                report.merge(check_query_rewrite(q.root(), merged, &scenario.catalog));
            }
        }

        // Audit under both maintenance policies: the incremental policy
        // exercises the work-fraction and delta-apply terms, which is where
        // the distributed evaluator's SharedRecompute path once diverged.
        for policy in [
            MaintenancePolicy::Recompute,
            MaintenancePolicy::Incremental {
                update_fraction: 0.25,
            },
        ] {
            let a = AnnotatedMvpp::annotate_with(mvpp.clone(), &est, UpdateWeighting::Max, policy);
            report.merge(audit_annotated(&a, &scenario.catalog));
            report.merge(check_prune_safety(&a));
            let choices = standard_choices(&a, config.seed, config.random_choices);
            report.merge(check_distributed_zero_link(&a, &choices));
        }

        let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
        let (greedy_m, _) = GreedySelection::new().run(&a);
        let mut views = ViewCatalog::new();
        for id in &greedy_m {
            let node = a.mvpp().node(*id);
            views.register(node.label(), std::sync::Arc::clone(node.expr()));
        }
        report.merge(check_semantics(
            &scenario.catalog,
            &scenario.workload,
            &a,
            Some(&views),
            config.generator,
        ));
        report.merge(check_delta_refresh(
            &scenario.catalog,
            &views,
            config.generator,
            3,
        ));
    }
    report
}

/// The standard audit battery: the paper's running example, a default star
/// schema, TPC-H lite and every degenerate case. Returns one named report
/// per scenario.
pub fn audit_standard_scenarios(config: &AuditConfig) -> Vec<(String, AuditReport)> {
    let mut results = Vec::new();
    results.push((
        "paper".to_string(),
        audit_scenario(&paper_example(), config),
    ));
    let star = StarSchema::with_config(StarSchemaConfig {
        queries: 6,
        ..StarSchemaConfig::default()
    })
    .scenario();
    results.push(("star".to_string(), audit_scenario(&star, config)));
    results.push(("tpch".to_string(), audit_scenario(&tpch_lite(), config)));
    for case in degenerate_scenarios() {
        results.push((
            format!("degenerate/{}", case.name),
            audit_scenario(&case.scenario, config),
        ));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_battery_is_clean() {
        for (name, report) in audit_standard_scenarios(&AuditConfig::default()) {
            report.assert_clean(&name);
        }
    }
}
