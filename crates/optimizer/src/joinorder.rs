//! Cost-based join ordering: exact dynamic programming over subsets for
//! small queries, greedy pairing beyond.

use std::collections::BTreeSet;
use std::sync::Arc;

use mvdesign_algebra::{AttrRef, Expr, JoinCondition, RelName};
use mvdesign_cost::{CostEstimator, CostModel};

/// A join graph: annotated leaves (base relations with their pushed-down
/// selections) plus the equi-join conditions connecting them.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    leaves: Vec<Arc<Expr>>,
    rels: Vec<RelName>,
    conds: Vec<(AttrRef, AttrRef)>,
}

impl JoinGraph {
    /// Builds a join graph from annotated leaves and conditions.
    ///
    /// Returns `None` when the input is degenerate for ordering purposes:
    /// no leaves, more than 63 leaves, a leaf that is not rooted in exactly
    /// one base relation, or two leaves over the same base relation
    /// (self-joins keep their original order instead).
    pub fn new(leaves: Vec<Arc<Expr>>, conds: Vec<(AttrRef, AttrRef)>) -> Option<Self> {
        if leaves.is_empty() || leaves.len() > 63 {
            return None;
        }
        let mut rels = Vec::with_capacity(leaves.len());
        for leaf in &leaves {
            let bases = leaf.base_relations();
            if bases.len() != 1 {
                return None;
            }
            rels.push(bases.into_iter().next().expect("len checked"));
        }
        let unique: BTreeSet<_> = rels.iter().collect();
        if unique.len() != rels.len() {
            return None;
        }
        Some(Self {
            leaves,
            rels,
            conds,
        })
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the graph has no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    fn leaf_mask(&self, rel: &RelName) -> u64 {
        self.rels
            .iter()
            .position(|r| r == rel)
            .map_or(0, |i| 1 << i)
    }

    /// Join condition pairs connecting subset `a` with subset `b`.
    fn pairs_between(&self, a: u64, b: u64) -> Vec<(AttrRef, AttrRef)> {
        self.conds
            .iter()
            .filter(|(x, y)| {
                let mx = self.leaf_mask(&x.relation);
                let my = self.leaf_mask(&y.relation);
                (mx & a != 0 && my & b != 0) || (mx & b != 0 && my & a != 0)
            })
            .cloned()
            .collect()
    }

    /// Finds the cheapest join order by exact subset DP (when
    /// `len() <= dp_limit`) or greedily otherwise.
    pub fn optimal_order<M: CostModel>(
        &self,
        est: &CostEstimator<'_, M>,
        dp_limit: usize,
    ) -> Arc<Expr> {
        if self.leaves.len() == 1 {
            return Arc::clone(&self.leaves[0]);
        }
        if self.leaves.len() <= dp_limit {
            self.dp_order(est)
        } else {
            self.greedy_order(est)
        }
    }

    fn join_of<M: CostModel>(
        &self,
        est: &CostEstimator<'_, M>,
        l: &(f64, Arc<Expr>),
        r: &(f64, Arc<Expr>),
        pairs: Vec<(AttrRef, AttrRef)>,
    ) -> (f64, Arc<Expr>) {
        let expr = Expr::join(
            Arc::clone(&l.1),
            Arc::clone(&r.1),
            JoinCondition::new(pairs),
        );
        let cost = l.0 + r.0 + est.op_cost(&expr);
        (cost, expr)
    }

    fn dp_order<M: CostModel>(&self, est: &CostEstimator<'_, M>) -> Arc<Expr> {
        let n = self.leaves.len();
        let full: u64 = (1 << n) - 1;
        let mut best: Vec<Option<(f64, Arc<Expr>)>> = vec![None; 1 << n];
        for (i, leaf) in self.leaves.iter().enumerate() {
            best[1 << i] = Some((est.tree_cost(leaf), Arc::clone(leaf)));
        }
        for set in 1..=full {
            if set.count_ones() < 2 {
                continue;
            }
            let mut candidate: Option<(f64, Arc<Expr>)> = None;
            let mut saw_connected = false;
            // Two passes: connected splits first; cross products only if the
            // subset admits no connected split at all.
            for pass in 0..2 {
                if pass == 1 && saw_connected {
                    break;
                }
                let mut sub = (set - 1) & set;
                while sub > 0 {
                    let other = set & !sub;
                    if sub < other {
                        // Each unordered split visited once; the paper's
                        // join-cost model is symmetric in its inputs, so
                        // operand order never changes the cost.
                        let pairs = self.pairs_between(sub, other);
                        let connected = !pairs.is_empty();
                        if connected {
                            saw_connected = true;
                        }
                        if (pass == 0) == connected {
                            if let (Some(l), Some(r)) = (&best[sub as usize], &best[other as usize])
                            {
                                let cand = self.join_of(est, l, r, pairs);
                                if candidate.as_ref().is_none_or(|c| cand.0 < c.0) {
                                    candidate = Some(cand);
                                }
                            }
                        }
                    }
                    sub = (sub - 1) & set;
                }
            }
            best[set as usize] = candidate;
        }
        best[full as usize]
            .take()
            .map(|(_, e)| e)
            .expect("every subset with >=2 leaves has at least a cross-product plan")
    }

    fn greedy_order<M: CostModel>(&self, est: &CostEstimator<'_, M>) -> Arc<Expr> {
        let mut parts: Vec<(u64, f64, Arc<Expr>)> = self
            .leaves
            .iter()
            .enumerate()
            .map(|(i, l)| (1 << i, est.tree_cost(l), Arc::clone(l)))
            .collect();
        while parts.len() > 1 {
            let mut best: Option<(usize, usize, f64, Arc<Expr>, bool)> = None;
            for i in 0..parts.len() {
                for j in (i + 1)..parts.len() {
                    let pairs = self.pairs_between(parts[i].0, parts[j].0);
                    let connected = !pairs.is_empty();
                    let (cost, expr) = self.join_of(
                        est,
                        &(parts[i].1, Arc::clone(&parts[i].2)),
                        &(parts[j].1, Arc::clone(&parts[j].2)),
                        pairs,
                    );
                    let better = match &best {
                        None => true,
                        Some((.., best_cost, _, best_conn)) => {
                            // Prefer connected joins; among equals, cheapest.
                            (connected, -cost) > (*best_conn, -*best_cost)
                        }
                    };
                    if better {
                        best = Some((i, j, cost, expr, connected));
                    }
                }
            }
            let (i, j, cost, expr, _) = best.expect("len > 1");
            let mask = parts[i].0 | parts[j].0;
            // Removing j first keeps index i valid because i < j.
            parts.swap_remove(j);
            parts.swap_remove(i);
            parts.push((mask, cost, expr));
        }
        parts.pop().expect("one part remains").2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{CompareOp, Predicate};
    use mvdesign_catalog::{AttrType, Catalog};
    use mvdesign_cost::{EstimationMode, PaperCostModel};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, records, blocks) in [
            ("Pd", 30_000.0, 3_000.0),
            ("Div", 5_000.0, 500.0),
            ("Pt", 80_000.0, 10_000.0),
        ] {
            c.relation(name)
                .attr("Pid", AttrType::Int)
                .attr("Did", AttrType::Int)
                .attr("city", AttrType::Text)
                .records(records)
                .blocks(blocks)
                .selectivity("city", 0.02)
                .finish()
                .unwrap();
        }
        c.set_join_selectivity(
            AttrRef::new("Pd", "Did"),
            AttrRef::new("Div", "Did"),
            1.0 / 5_000.0,
        )
        .unwrap();
        c.set_join_selectivity(
            AttrRef::new("Pt", "Pid"),
            AttrRef::new("Pd", "Pid"),
            1.0 / 30_000.0,
        )
        .unwrap();
        c
    }

    fn leaves_and_conds() -> (Vec<Arc<Expr>>, Vec<(AttrRef, AttrRef)>) {
        let selected_div = Expr::select(
            Expr::base("Div"),
            Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
        );
        (
            vec![Expr::base("Pd"), selected_div, Expr::base("Pt")],
            vec![
                (AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
                (AttrRef::new("Pt", "Pid"), AttrRef::new("Pd", "Pid")),
            ],
        )
    }

    #[test]
    fn dp_prefers_selective_join_first() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let (leaves, conds) = leaves_and_conds();
        let g = JoinGraph::new(leaves, conds).unwrap();
        let plan = g.optimal_order(&est, 12);
        // The optimal plan joins (Pd ⋈ σDiv) before bringing in the huge Pt.
        match &*plan {
            Expr::Join { left, right, .. } => {
                let joined_first: BTreeSet<_> = if matches!(&**left, Expr::Join { .. }) {
                    left.base_relations()
                } else {
                    right.base_relations()
                };
                assert!(joined_first.contains("Div"), "plan: {plan}");
                assert!(joined_first.contains("Pd"), "plan: {plan}");
            }
            other => panic!("expected join, got {other}"),
        }
    }

    #[test]
    fn dp_and_greedy_agree_on_small_inputs() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let (leaves, conds) = leaves_and_conds();
        let g = JoinGraph::new(leaves, conds).unwrap();
        let dp = g.optimal_order(&est, 12);
        let greedy = g.optimal_order(&est, 1);
        assert!(est.tree_cost(&greedy) >= est.tree_cost(&dp));
        assert_eq!(dp.base_relations(), greedy.base_relations());
    }

    #[test]
    fn single_leaf_passes_through() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let g = JoinGraph::new(vec![Expr::base("Pd")], vec![]).unwrap();
        assert!(g.optimal_order(&est, 12).is_base());
    }

    #[test]
    fn disconnected_graph_still_plans_via_cross_product() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let g = JoinGraph::new(vec![Expr::base("Pd"), Expr::base("Div")], vec![]).unwrap();
        let plan = g.optimal_order(&est, 12);
        assert_eq!(plan.base_relations().len(), 2);
    }

    #[test]
    fn duplicate_relations_are_rejected() {
        assert!(JoinGraph::new(vec![Expr::base("Pd"), Expr::base("Pd")], vec![]).is_none());
        assert!(JoinGraph::new(vec![], vec![]).is_none());
    }

    #[test]
    fn dp_result_covers_all_relations() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let (leaves, conds) = leaves_and_conds();
        let g = JoinGraph::new(leaves, conds).unwrap();
        let plan = g.optimal_order(&est, 12);
        assert_eq!(plan.base_relations().len(), 3);
    }
}
