//! Single-query optimization for SPJ plans.
//!
//! The MVPP generation algorithm (paper §4.2, Figure 4) starts from an
//! *individual optimal plan* per query, temporarily pulls the select/project
//! operations above the joins while merging, and pushes them back down
//! afterwards. This crate supplies all three pieces:
//!
//! * [`pull_up`] — rewrite a plan so selections and the final projection sit
//!   above a pure join tree (Figure 4, step 2);
//! * [`push_selections`] / [`push_projections`] — the classic heuristic
//!   push-down rewrites (Figure 4, steps 5–6 use the same machinery with
//!   disjunction/union merging, implemented in `mvdesign-core`);
//! * [`Planner`] — cost-based join-order enumeration (dynamic programming
//!   over connected subsets, greedy beyond a size threshold), producing the
//!   "optimal query processing plan" (Figure 4, step 1).
//!
//! # Example
//!
//! ```
//! use mvdesign_algebra::parse_query;
//! use mvdesign_catalog::{AttrType, Catalog};
//! use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};
//! use mvdesign_optimizer::Planner;
//!
//! let mut catalog = Catalog::new();
//! catalog.relation("Div")
//!     .attr("Did", AttrType::Int).attr("city", AttrType::Text)
//!     .records(5_000.0).blocks(500.0).selectivity("city", 0.02)
//!     .finish()?;
//! catalog.relation("Pd")
//!     .attr("Pid", AttrType::Int).attr("name", AttrType::Text).attr("Did", AttrType::Int)
//!     .records(30_000.0).blocks(3_000.0)
//!     .finish()?;
//! let est = CostEstimator::new(&catalog, EstimationMode::Analytic, PaperCostModel::default());
//! let naive = parse_query(
//!     "SELECT Pd.name FROM Pd, Div WHERE Div.city = 'LA' AND Pd.Did = Div.Did",
//! ).unwrap();
//! let optimal = Planner::new().optimize(&naive, &est);
//! assert!(est.tree_cost(&optimal) <= est.tree_cost(&naive));
//! # Ok::<(), mvdesign_catalog::CatalogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod joinorder;
mod planner;
mod pulled;
mod pushdown;

pub use crate::joinorder::JoinGraph;
pub use crate::planner::{Planner, PlannerConfig};
pub use crate::pulled::{pull_up, PulledPlan};
pub use crate::pushdown::{push_projections, push_selections};
