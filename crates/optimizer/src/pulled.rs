//! Pulling selections and projections above the join tree (Figure 4, step 2).

use std::sync::Arc;

use mvdesign_algebra::{AggExpr, AttrRef, Expr, Predicate};

/// A plan rewritten into the paper's "pushed-up" normal form: a pure join
/// tree over base relations, one selection predicate, and an optional final
/// projection.
///
/// This is the shape the MVPP merge algorithm manipulates — it compares join
/// patterns between plans without select/project operators in the way, then
/// pushes the predicates back down over the merged DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct PulledPlan {
    /// Joins (and nothing else) over [`Expr::Base`] leaves.
    pub join_tree: Arc<Expr>,
    /// Conjunction of every selection found in the original plan.
    pub predicate: Predicate,
    /// The outermost projection of the original plan, if any.
    pub projection: Option<Vec<AttrRef>>,
    /// The outermost aggregation of the original plan, if any (applied
    /// between the selection and the projection when rebuilding).
    pub aggregate: Option<(Vec<AttrRef>, Vec<AggExpr>)>,
}

impl PulledPlan {
    /// Rebuilds a plain expression: `π(σ(join_tree))`.
    pub fn to_expr(&self) -> Arc<Expr> {
        let mut e = Expr::select(Arc::clone(&self.join_tree), self.predicate.clone());
        if let Some((group_by, aggs)) = &self.aggregate {
            e = Expr::aggregate(e, group_by.clone(), aggs.clone());
        }
        if let Some(attrs) = &self.projection {
            e = Expr::project(e, attrs.clone());
        }
        e
    }
}

/// Rewrites `expr` into [`PulledPlan`] normal form.
///
/// Interior projections are dropped (SPJ projections here are bag
/// projections, so widening intermediate results cannot change the final
/// output once the outermost projection is re-applied); interior selections
/// are conjoined into one predicate.
pub fn pull_up(expr: &Arc<Expr>) -> PulledPlan {
    let mut preds = Vec::new();
    let mut projection = None;
    let mut aggregate = None;
    let mut node = expr;
    // Peel the outermost π/γ/σ spine, remembering the first (outermost) π
    // and the first γ. Selections above a γ filter aggregate output and
    // cannot be pulled past it; the parser never produces them, and if
    // present the γ is treated as an opaque leaf by `strip` below.
    loop {
        match &**node {
            Expr::Project { input, attrs } if aggregate.is_none() => {
                if projection.is_none() {
                    projection = Some(attrs.clone());
                }
                node = input;
            }
            Expr::Aggregate {
                input,
                group_by,
                aggs,
            } if aggregate.is_none() && preds.is_empty() => {
                aggregate = Some((group_by.clone(), aggs.clone()));
                node = input;
            }
            Expr::Select { input, predicate } => {
                preds.push(predicate.clone());
                node = input;
            }
            _ => break,
        }
    }
    let join_tree = strip(node, &mut preds);
    PulledPlan {
        join_tree,
        predicate: Predicate::and(preds),
        projection,
        aggregate,
    }
}

/// Removes every interior select/project, collecting predicates.
fn strip(expr: &Arc<Expr>, preds: &mut Vec<Predicate>) -> Arc<Expr> {
    match &**expr {
        Expr::Base(_) => Arc::clone(expr),
        Expr::Select { input, predicate } => {
            preds.push(predicate.clone());
            strip(input, preds)
        }
        Expr::Project { input, .. } => strip(input, preds),
        // A nested aggregation is a hard boundary: its result is not an SPJ
        // view of the bases, so it stays intact as an opaque join leaf.
        Expr::Aggregate { .. } => Arc::clone(expr),
        Expr::Join { left, right, on } => {
            let l = strip(left, preds);
            let r = strip(right, preds);
            if Arc::ptr_eq(&l, left) && Arc::ptr_eq(&r, right) {
                Arc::clone(expr)
            } else {
                Expr::join(l, r, on.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{CompareOp, JoinCondition};

    fn la() -> Predicate {
        Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA")
    }

    fn plan() -> Arc<Expr> {
        // π name (σ qty>100 ( (Pd ⋈ σ LA (Div)) ))
        let j = Expr::join(
            Expr::base("Pd"),
            Expr::select(Expr::base("Div"), la()),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        );
        Expr::project(
            Expr::select(
                j,
                Predicate::cmp(AttrRef::new("Pd", "qty"), CompareOp::Gt, 100),
            ),
            [AttrRef::new("Pd", "name")],
        )
    }

    #[test]
    fn pull_up_produces_pure_join_tree() {
        let p = pull_up(&plan());
        let mut non_join = 0;
        mvdesign_algebra::postorder(&p.join_tree, &mut |n| {
            if !matches!(&**n, Expr::Join { .. } | Expr::Base(_)) {
                non_join += 1;
            }
        });
        assert_eq!(non_join, 0);
        assert_eq!(
            p.projection.as_deref(),
            Some(&[AttrRef::new("Pd", "name")][..])
        );
        assert_eq!(
            p.predicate,
            Predicate::and([
                la(),
                Predicate::cmp(AttrRef::new("Pd", "qty"), CompareOp::Gt, 100)
            ])
        );
    }

    #[test]
    fn to_expr_reassembles() {
        let p = pull_up(&plan());
        let e = p.to_expr();
        assert!(matches!(&*e, Expr::Project { .. }));
        // Same base relations, same predicate set.
        assert_eq!(e.base_relations(), plan().base_relations());
    }

    #[test]
    fn pull_up_of_pure_join_is_identity() {
        let j = Expr::join(Expr::base("A"), Expr::base("B"), JoinCondition::cross());
        let p = pull_up(&j);
        assert!(Arc::ptr_eq(&p.join_tree, &j));
        assert!(p.predicate.is_true());
        assert!(p.projection.is_none());
    }

    #[test]
    fn outermost_projection_wins() {
        let inner = Expr::project(
            Expr::base("A"),
            [AttrRef::new("A", "x"), AttrRef::new("A", "y")],
        );
        let outer = Expr::project(inner, [AttrRef::new("A", "x")]);
        let p = pull_up(&outer);
        assert_eq!(p.projection.as_deref(), Some(&[AttrRef::new("A", "x")][..]));
        assert!(p.join_tree.is_base());
    }
}
