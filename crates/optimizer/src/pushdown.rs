//! Heuristic push-down rewrites: selections toward the leaves, projections
//! inserted above the leaves.

use std::collections::BTreeSet;
use std::sync::Arc;

use mvdesign_algebra::{output_attrs, AttrRef, Expr, Predicate, RelName};
use mvdesign_catalog::Catalog;

/// Pushes every selection as far down the tree as possible.
///
/// A conjunct moves below a join when all of its attributes come from one
/// side; conjuncts spanning both sides (or disjunctions mixing sides) stay
/// above the join. The rewrite never changes the relation computed.
pub fn push_selections(expr: &Arc<Expr>) -> Arc<Expr> {
    push(expr, Predicate::True)
}

fn push(expr: &Arc<Expr>, pending: Predicate) -> Arc<Expr> {
    match &**expr {
        Expr::Base(_) => Expr::select(Arc::clone(expr), pending),
        Expr::Select { input, predicate } => {
            push(input, Predicate::and([pending, predicate.clone()]))
        }
        Expr::Project { input, attrs } => {
            // Every attribute `pending` mentions is visible below the π
            // (it was visible above, and π only narrows).
            Expr::project(push(input, pending), attrs.clone())
        }
        Expr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Selections arriving from above may reference aggregate
            // outputs, so they stay above the γ; the γ's input is pushed
            // independently.
            let rebuilt =
                Expr::aggregate(push(input, Predicate::True), group_by.clone(), aggs.clone());
            Expr::select(rebuilt, pending)
        }
        Expr::Join { left, right, on } => {
            let lrels = left.base_relations();
            let rrels = right.base_relations();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut stay = Vec::new();
            for conjunct in conjuncts(pending) {
                match side_of(&conjunct, &lrels, &rrels) {
                    Side::Left => to_left.push(conjunct),
                    Side::Right => to_right.push(conjunct),
                    Side::Both => stay.push(conjunct),
                }
            }
            let joined = Expr::join(
                push(left, Predicate::and(to_left)),
                push(right, Predicate::and(to_right)),
                on.clone(),
            );
            Expr::select(joined, Predicate::and(stay))
        }
    }
}

fn conjuncts(p: Predicate) -> Vec<Predicate> {
    match p {
        Predicate::True => Vec::new(),
        Predicate::And(ps) => ps,
        other => vec![other],
    }
}

enum Side {
    Left,
    Right,
    Both,
}

fn side_of(p: &Predicate, lrels: &BTreeSet<RelName>, rrels: &BTreeSet<RelName>) -> Side {
    let mut in_left = false;
    let mut in_right = false;
    for a in p.attrs() {
        if lrels.contains(&a.relation) {
            in_left = true;
        }
        if rrels.contains(&a.relation) {
            in_right = true;
        }
    }
    match (in_left, in_right) {
        (true, false) => Side::Left,
        (false, true) => Side::Right,
        // Spanning, or referencing neither side (dangling attribute —
        // keep it where it was so schema inference can report it).
        _ => Side::Both,
    }
}

/// Inserts projections directly above each leaf (and below each join) so
/// only attributes needed further up — for predicates, join conditions and
/// the final output — are carried.
///
/// Needs the catalog to know each base relation's full attribute list.
/// Subtrees whose schemas fail to infer are returned unchanged.
pub fn push_projections(expr: &Arc<Expr>, catalog: &Catalog) -> Arc<Expr> {
    let Ok(out) = output_attrs(expr, catalog) else {
        return Arc::clone(expr);
    };
    let needed: BTreeSet<AttrRef> = out.into_iter().collect();
    narrow(expr, &needed, catalog)
}

fn narrow(expr: &Arc<Expr>, needed: &BTreeSet<AttrRef>, catalog: &Catalog) -> Arc<Expr> {
    match &**expr {
        Expr::Base(name) => {
            let Some(schema) = catalog.schema(name.as_str()) else {
                return Arc::clone(expr);
            };
            let keep: Vec<AttrRef> = schema
                .attributes()
                .iter()
                .map(|a| AttrRef::new(name.clone(), a.name.clone()))
                .filter(|a| needed.contains(a))
                .collect();
            if keep.len() == schema.arity() || keep.is_empty() {
                Arc::clone(expr)
            } else {
                Expr::project(Arc::clone(expr), keep)
            }
        }
        Expr::Select { input, predicate } => {
            let mut below = needed.clone();
            below.extend(predicate.attrs().into_iter().cloned());
            Expr::select(narrow(input, &below, catalog), predicate.clone())
        }
        Expr::Project { input, attrs } => {
            // The projection itself defines what is needed below.
            let below: BTreeSet<AttrRef> = attrs.iter().cloned().collect();
            Expr::project(narrow(input, &below, catalog), attrs.clone())
        }
        Expr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let mut below: BTreeSet<AttrRef> = group_by.iter().cloned().collect();
            below.extend(aggs.iter().filter_map(|a| a.input.clone()));
            Expr::aggregate(
                narrow(input, &below, catalog),
                group_by.clone(),
                aggs.clone(),
            )
        }
        Expr::Join { left, right, on } => {
            let mut below = needed.clone();
            for (a, b) in on.pairs() {
                below.insert(a.clone());
                below.insert(b.clone());
            }
            let lrels = left.base_relations();
            let rrels = right.base_relations();
            let lneed: BTreeSet<AttrRef> = below
                .iter()
                .filter(|a| lrels.contains(&a.relation))
                .cloned()
                .collect();
            let rneed: BTreeSet<AttrRef> = below
                .iter()
                .filter(|a| rrels.contains(&a.relation))
                .cloned()
                .collect();
            Expr::join(
                narrow(left, &lneed, catalog),
                narrow(right, &rneed, catalog),
                on.clone(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{parse_query_with, CompareOp, JoinCondition};
    use mvdesign_catalog::AttrType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Pd")
            .attr("Pid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Did", AttrType::Int)
            .records(30_000.0)
            .blocks(3_000.0)
            .finish()
            .unwrap();
        c.relation("Div")
            .attr("Did", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        c
    }

    #[test]
    fn selection_moves_below_join() {
        let c = catalog();
        let q = parse_query_with(
            "SELECT Pd.name FROM Pd, Div WHERE Div.city = 'LA' AND Pd.Did = Div.Did",
            &c,
        )
        .unwrap();
        let pushed = push_selections(&q);
        // The σ city='LA' must now sit directly on Div.
        let mut found = false;
        mvdesign_algebra::postorder(&pushed, &mut |n| {
            if let Expr::Select { input, predicate } = &**n {
                if input.is_base() {
                    assert_eq!(predicate.to_string(), "Div.city='LA'");
                    found = true;
                }
            }
        });
        assert!(found, "pushed plan: {pushed}");
    }

    #[test]
    fn spanning_predicate_stays_above_join() {
        let j = Expr::join(Expr::base("A"), Expr::base("B"), JoinCondition::cross());
        let span = Predicate::Cmp(mvdesign_algebra::Comparison {
            attr: AttrRef::new("A", "x"),
            op: CompareOp::Lt,
            rhs: mvdesign_algebra::Rhs::Attr(AttrRef::new("B", "y")),
        });
        let e = Expr::select(j, span.clone());
        let pushed = push_selections(&e);
        match &*pushed {
            Expr::Select { predicate, input } => {
                assert_eq!(*predicate, span);
                assert!(matches!(&**input, Expr::Join { .. }));
            }
            other => panic!("expected top-level select, got {other}"),
        }
    }

    #[test]
    fn push_down_preserves_semantic_key_of_selected_base() {
        // σ over base is already as low as possible: idempotent.
        let e = Expr::select(
            Expr::base("Div"),
            Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
        );
        assert_eq!(push_selections(&e).semantic_key(), e.semantic_key());
    }

    #[test]
    fn projections_narrow_wide_leaves() {
        let c = catalog();
        let q = parse_query_with(
            "SELECT Pd.name FROM Pd, Div WHERE Div.city = 'LA' AND Pd.Did = Div.Did",
            &c,
        )
        .unwrap();
        let narrowed = push_projections(&push_selections(&q), &c);
        // Pd should be narrowed to {name, Did}: Pid is never used.
        let mut ok = false;
        mvdesign_algebra::postorder(&narrowed, &mut |n| {
            if let Expr::Project { input, attrs } = &**n {
                if input.is_base() && input.base_relations().contains("Pd") {
                    assert_eq!(attrs.len(), 2);
                    assert!(attrs.contains(&AttrRef::new("Pd", "name")));
                    assert!(attrs.contains(&AttrRef::new("Pd", "Did")));
                    ok = true;
                }
            }
        });
        assert!(ok, "narrowed plan: {narrowed}");
        // Output schema is unchanged.
        assert_eq!(
            output_attrs(&narrowed, &c).unwrap(),
            output_attrs(&q, &c).unwrap()
        );
    }

    #[test]
    fn projection_pushdown_skips_unknown_schemas() {
        let c = catalog();
        let e = Expr::base("Ghost");
        let out = push_projections(&e, &c);
        assert!(Arc::ptr_eq(&out, &e));
    }
}
