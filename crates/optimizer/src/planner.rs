//! The single-query planner: Figure 4, step 1 ("generate an optimal query
//! processing plan").

use std::sync::Arc;

use mvdesign_algebra::{Expr, Predicate};
use mvdesign_cost::{CostEstimator, CostModel};

use crate::joinorder::JoinGraph;
use crate::pulled::pull_up;
use crate::pushdown::{push_projections, push_selections};

/// Tuning knobs for [`Planner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Largest number of join leaves planned with exact subset DP; larger
    /// queries fall back to greedy pairing.
    pub max_dp_relations: usize,
    /// Insert projections above the leaves after ordering.
    pub projection_pushdown: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            max_dp_relations: 12,
            projection_pushdown: true,
        }
    }
}

/// Produces cost-optimal single-query plans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner {
    config: PlannerConfig,
}

impl Planner {
    /// A planner with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A planner with explicit configuration.
    pub fn with_config(config: PlannerConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Rewrites `expr` into a cheaper equivalent plan:
    ///
    /// 1. pull selections/projection above the join tree,
    /// 2. push single-relation conjuncts onto their leaves,
    /// 3. enumerate join orders cost-optimally,
    /// 4. re-apply the residual predicate and the final projection,
    /// 5. optionally push projections down to the leaves.
    ///
    /// Queries the machinery cannot restructure (self-joins, non-base
    /// leaves) fall back to plain selection push-down. The returned plan is
    /// never costlier than `expr` under `est`.
    pub fn optimize<M: CostModel>(
        &self,
        expr: &Arc<Expr>,
        est: &CostEstimator<'_, M>,
    ) -> Arc<Expr> {
        let candidate = self.restructure(expr, est);
        let candidate = if self.config.projection_pushdown {
            push_projections(&candidate, est.cardinalities().catalog())
        } else {
            candidate
        };
        if est.tree_cost(&candidate) <= est.tree_cost(expr) {
            candidate
        } else {
            Arc::clone(expr)
        }
    }

    fn restructure<M: CostModel>(&self, expr: &Arc<Expr>, est: &CostEstimator<'_, M>) -> Arc<Expr> {
        let pulled = pull_up(expr);

        // Collect join-tree leaves (bases) and flatten conditions.
        let mut leaves = Vec::new();
        let mut conds = Vec::new();
        flatten(&pulled.join_tree, &mut leaves, &mut conds);

        // Split the pulled predicate into per-leaf conjuncts and a residual.
        let mut per_leaf: Vec<Vec<Predicate>> = vec![Vec::new(); leaves.len()];
        let mut residual = Vec::new();
        let conjuncts = match pulled.predicate.clone() {
            Predicate::True => Vec::new(),
            Predicate::And(ps) => ps,
            other => vec![other],
        };
        'outer: for conjunct in conjuncts {
            let rels: std::collections::BTreeSet<_> = conjunct
                .attrs()
                .iter()
                .map(|a| a.relation.clone())
                .collect();
            if rels.len() == 1 {
                let rel = rels.into_iter().next().expect("len checked");
                for (i, leaf) in leaves.iter().enumerate() {
                    if leaf.base_relations().contains(&rel) {
                        per_leaf[i].push(conjunct);
                        continue 'outer;
                    }
                }
            }
            residual.push(conjunct);
        }
        let annotated: Vec<Arc<Expr>> = leaves
            .iter()
            .zip(per_leaf)
            .map(|(leaf, preds)| Expr::select(Arc::clone(leaf), Predicate::and(preds)))
            .collect();

        let ordered = match JoinGraph::new(annotated, conds) {
            Some(graph) => graph.optimal_order(est, self.config.max_dp_relations),
            // Degenerate (self-join, >63 relations…): keep the original
            // shape, just push selections down.
            None => return push_selections(expr),
        };

        let mut out = Expr::select(ordered, Predicate::and(residual));
        if let Some((group_by, aggs)) = &pulled.aggregate {
            out = Expr::aggregate(out, group_by.clone(), aggs.clone());
        }
        if let Some(attrs) = &pulled.projection {
            out = Expr::project(out, attrs.clone());
        }
        out
    }
}

/// Flattens a pure join tree into leaves and condition pairs.
fn flatten(
    expr: &Arc<Expr>,
    leaves: &mut Vec<Arc<Expr>>,
    conds: &mut Vec<(mvdesign_algebra::AttrRef, mvdesign_algebra::AttrRef)>,
) {
    match &**expr {
        Expr::Join { left, right, on } => {
            conds.extend(on.pairs().iter().cloned());
            flatten(left, leaves, conds);
            flatten(right, leaves, conds);
        }
        _ => leaves.push(Arc::clone(expr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{parse_query_with, AttrRef};
    use mvdesign_catalog::{AttrType, Catalog, RelName};
    use mvdesign_cost::{EstimationMode, PaperCostModel, RelationStats};

    /// The paper's full Table 1 catalog.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Pd")
            .attr("Pid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Did", AttrType::Int)
            .records(30_000.0)
            .blocks(3_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("Div")
            .attr("Did", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .update_frequency(1.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        c.relation("Ord")
            .attr("Pid", AttrType::Int)
            .attr("Cid", AttrType::Int)
            .attr("quantity", AttrType::Int)
            .attr("date", AttrType::Date)
            .records(50_000.0)
            .blocks(6_000.0)
            .update_frequency(1.0)
            .selectivity("quantity", 0.5)
            .selectivity("date", 0.5)
            .finish()
            .unwrap();
        c.relation("Cust")
            .attr("Cid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("city", AttrType::Text)
            .records(20_000.0)
            .blocks(2_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("Pt")
            .attr("Tid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Pid", AttrType::Int)
            .attr("supplier", AttrType::Text)
            .records(80_000.0)
            .blocks(10_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        for (a, b, js) in [
            (("Pd", "Did"), ("Div", "Did"), 1.0 / 5_000.0),
            (("Pt", "Pid"), ("Pd", "Pid"), 1.0 / 30_000.0),
            (("Ord", "Cid"), ("Cust", "Cid"), 1.0 / 40_000.0),
            (("Ord", "Pid"), ("Pd", "Pid"), 1.0 / 30_000.0),
        ] {
            c.set_join_selectivity(AttrRef::new(a.0, a.1), AttrRef::new(b.0, b.1), js)
                .unwrap();
        }
        c.set_size_override(
            [RelName::new("Pd"), RelName::new("Div")],
            RelationStats::new(30_000.0, 5_000.0),
        )
        .unwrap();
        c
    }

    #[test]
    fn optimizer_never_worsens_a_plan() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        for sql in [
            "SELECT Pd.name FROM Pd, Div WHERE Div.city='LA' AND Pd.Did=Div.Did",
            "SELECT Pt.name FROM Pd, Pt, Div WHERE Div.city='LA' AND Pd.Did=Div.Did AND Pt.Pid=Pd.Pid",
            "SELECT Cust.name, Pd.name, quantity FROM Pd, Div, Ord, Cust \
             WHERE Div.city='LA' AND Pd.Did=Div.Did AND Pd.Pid=Ord.Pid AND Ord.Cid=Cust.Cid AND date>7/1/96",
            "SELECT Cust.city, date FROM Ord, Cust WHERE quantity>100 AND Ord.Cid=Cust.Cid",
        ] {
            let naive = parse_query_with(sql, &c).unwrap();
            let opt = Planner::new().optimize(&naive, &est);
            assert!(
                est.tree_cost(&opt) <= est.tree_cost(&naive),
                "optimizer worsened {sql}: {} -> {}",
                est.tree_cost(&naive),
                est.tree_cost(&opt)
            );
            assert_eq!(opt.base_relations(), naive.base_relations());
        }
    }

    #[test]
    fn selection_lands_on_its_leaf() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let naive = parse_query_with(
            "SELECT Pd.name FROM Pd, Div WHERE Div.city='LA' AND Pd.Did=Div.Did",
            &c,
        )
        .unwrap();
        let opt = Planner::new().optimize(&naive, &est);
        let mut on_leaf = false;
        mvdesign_algebra::postorder(&opt, &mut |n| {
            if let Expr::Select { input, .. } = &**n {
                // Directly on the base, or separated only by a projection.
                let leafish = match &**input {
                    Expr::Base(_) => true,
                    Expr::Project { input: inner, .. } => inner.is_base(),
                    _ => false,
                };
                if leafish && input.base_relations().contains("Div") {
                    on_leaf = true;
                }
            }
        });
        assert!(on_leaf, "optimized: {opt}");
    }

    #[test]
    fn q3_defers_expensive_relations() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let naive = parse_query_with(
            "SELECT Cust.name, Pd.name, quantity FROM Pd, Div, Ord, Cust \
             WHERE Div.city='LA' AND Pd.Did=Div.Did AND Pd.Pid=Ord.Pid AND Ord.Cid=Cust.Cid AND date>7/1/96",
            &c,
        )
        .unwrap();
        let opt = Planner::new().optimize(&naive, &est);
        // Sanity: strictly cheaper than the FROM-order plan for this query.
        assert!(est.tree_cost(&opt) < est.tree_cost(&naive));
    }

    #[test]
    fn single_relation_query_is_preserved() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let naive = parse_query_with("SELECT name FROM Cust WHERE city='LA'", &c).unwrap();
        let opt = Planner::new().optimize(&naive, &est);
        assert_eq!(opt.semantic_key(), naive.semantic_key());
    }

    #[test]
    fn projection_pushdown_can_be_disabled() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let naive = parse_query_with(
            "SELECT Pd.name FROM Pd, Div WHERE Div.city='LA' AND Pd.Did=Div.Did",
            &c,
        )
        .unwrap();
        let planner = Planner::with_config(PlannerConfig {
            projection_pushdown: false,
            ..PlannerConfig::default()
        });
        let opt = planner.optimize(&naive, &est);
        let mut interior_proj = 0;
        mvdesign_algebra::postorder(&opt, &mut |n| {
            if let Expr::Project { input, .. } = &**n {
                if input.is_base() {
                    interior_proj += 1;
                }
            }
        });
        assert_eq!(interior_proj, 0, "plan: {opt}");
    }
}
