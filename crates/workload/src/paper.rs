//! The paper's running example (§2, Table 1, Queries 1–4).

use mvdesign_algebra::{parse_query_with, AttrRef, Query};
use mvdesign_catalog::{AttrType, Catalog, RelationStats};
use mvdesign_core::Workload;

/// A catalog plus a workload — one complete design problem.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Base relations with statistics.
    pub catalog: Catalog,
    /// Warehouse queries with frequencies.
    pub workload: Workload,
}

/// Builds the paper's Table 1 catalog:
///
/// | relation | records | blocks | statistics |
/// |---|---|---|---|
/// | Product  | 30k | 3k  | |
/// | Division | 5k  | 0.5k | `s(city) = 0.02` |
/// | Order    | 50k | 6k  | `s(quantity) = 0.5`, `s(date) = 0.5` |
/// | Customer | 20k | 2k  | |
/// | Part     | 80k | 10k | |
///
/// with the stated joint sizes (`Product⋈Division = 30k/5k`,
/// `Product⋈Division⋈Part = 80k/20k`, `Order⋈Customer = 25k/5k`,
/// `Product⋈Division⋈Order⋈Customer = 25k/5k`) and join selectivities
/// derived from them (`js(P.Did, D.Did) = 1/5k`, `js(Pt.Pid, P.Pid) =
/// 1/30k`, `js(O.Cid, C.Cid) = 1/40k`, `js(O.Pid, P.Pid) = 1/30k`). Every
/// base relation updates once per period, as the paper assumes.
pub fn paper_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.relation("Product")
        .attr("Pid", AttrType::Int)
        .attr("name", AttrType::Text)
        .attr("Did", AttrType::Int)
        .records(30_000.0)
        .blocks(3_000.0)
        .update_frequency(1.0)
        .finish()
        .expect("static catalog is valid");
    c.relation("Division")
        .attr("Did", AttrType::Int)
        .attr("name", AttrType::Text)
        .attr("city", AttrType::Text)
        .records(5_000.0)
        .blocks(500.0)
        .update_frequency(1.0)
        .selectivity("city", 0.02)
        .selectivity("name", 0.02)
        .finish()
        .expect("static catalog is valid");
    c.relation("Order")
        .attr("Pid", AttrType::Int)
        .attr("Cid", AttrType::Int)
        .attr("quantity", AttrType::Int)
        .attr("date", AttrType::Date)
        .records(50_000.0)
        .blocks(6_000.0)
        .update_frequency(1.0)
        .selectivity("quantity", 0.5)
        .selectivity("date", 0.5)
        .finish()
        .expect("static catalog is valid");
    c.relation("Customer")
        .attr("Cid", AttrType::Int)
        .attr("name", AttrType::Text)
        .attr("city", AttrType::Text)
        .records(20_000.0)
        .blocks(2_000.0)
        .update_frequency(1.0)
        .finish()
        .expect("static catalog is valid");
    c.relation("Part")
        .attr("Tid", AttrType::Int)
        .attr("name", AttrType::Text)
        .attr("Pid", AttrType::Int)
        .attr("supplier", AttrType::Text)
        .records(80_000.0)
        .blocks(10_000.0)
        .update_frequency(1.0)
        .finish()
        .expect("static catalog is valid");

    for (a, b, js) in [
        (("Product", "Did"), ("Division", "Did"), 1.0 / 5_000.0),
        (("Part", "Pid"), ("Product", "Pid"), 1.0 / 30_000.0),
        (("Order", "Cid"), ("Customer", "Cid"), 1.0 / 40_000.0),
        (("Order", "Pid"), ("Product", "Pid"), 1.0 / 30_000.0),
    ] {
        c.set_join_selectivity(AttrRef::new(a.0, a.1), AttrRef::new(b.0, b.1), js)
            .expect("static catalog is valid");
    }

    for (rels, records, blocks) in [
        (vec!["Product", "Division"], 30_000.0, 5_000.0),
        (vec!["Product", "Division", "Part"], 80_000.0, 20_000.0),
        (vec!["Order", "Customer"], 25_000.0, 5_000.0),
        (
            vec!["Product", "Division", "Order", "Customer"],
            25_000.0,
            5_000.0,
        ),
    ] {
        c.set_size_override(
            rels.into_iter().map(Into::into),
            RelationStats::new(records, blocks),
        )
        .expect("static catalog is valid");
    }
    c
}

/// The paper's four warehouse queries (§2) with their access frequencies
/// from Figure 3: `fq(Q1) = 10`, `fq(Q2) = 0.5`, `fq(Q3) = 0.8`,
/// `fq(Q4) = 5`.
pub fn paper_example() -> Scenario {
    let catalog = paper_catalog();
    let q = |name: &str, fq: f64, sql: &str| {
        Query::new(
            name,
            fq,
            parse_query_with(sql, &catalog).expect("static query parses"),
        )
    };
    let workload = Workload::new([
        q(
            "Q1",
            10.0,
            "SELECT Product.name FROM Product, Division \
             WHERE Division.city = 'LA' AND Product.Did = Division.Did",
        ),
        q(
            "Q2",
            0.5,
            "SELECT Part.name FROM Product, Part, Division \
             WHERE Division.city = 'LA' AND Product.Did = Division.Did \
             AND Part.Pid = Product.Pid",
        ),
        q(
            "Q3",
            0.8,
            "SELECT Customer.name, Product.name, quantity \
             FROM Product, Division, Order, Customer \
             WHERE Division.city = 'LA' AND Product.Did = Division.Did \
             AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid \
             AND date > 7/1/96",
        ),
        q(
            "Q4",
            5.0,
            "SELECT Customer.city, date FROM Order, Customer \
             WHERE quantity > 100 AND Order.Cid = Customer.Cid",
        ),
    ])
    .expect("static workload is valid");
    Scenario { catalog, workload }
}

/// The query-variant workload of the paper's Figures 5–8, where Query 2
/// selects `Division.name = "Re"` and Query 3 selects `Division.city =
/// "SF"` — the variant that makes the pushed-down leaf filter on Division
/// the three-way disjunction `city='LA' ∨ city='SF' ∨ name='Re'` shown in
/// Figure 8.
pub fn paper_figure7_example() -> Scenario {
    let catalog = paper_catalog();
    let q = |name: &str, fq: f64, sql: &str| {
        Query::new(
            name,
            fq,
            parse_query_with(sql, &catalog).expect("static query parses"),
        )
    };
    let workload = Workload::new([
        q(
            "Q1",
            10.0,
            "SELECT Product.name FROM Product, Division \
             WHERE Division.city = 'LA' AND Product.Did = Division.Did",
        ),
        q(
            "Q2",
            0.5,
            "SELECT Part.name FROM Product, Part, Division \
             WHERE Division.name = 'Re' AND Product.Did = Division.Did \
             AND Part.Pid = Product.Pid",
        ),
        q(
            "Q3",
            0.8,
            "SELECT Customer.name, Product.name, quantity \
             FROM Product, Division, Order, Customer \
             WHERE Division.city = 'SF' AND Product.Did = Division.Did \
             AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid \
             AND date > 7/1/96",
        ),
        q(
            "Q4",
            5.0,
            "SELECT Customer.city, date FROM Order, Customer \
             WHERE quantity > 100 AND Order.Cid = Customer.Cid",
        ),
    ])
    .expect("static workload is valid");
    Scenario { catalog, workload }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::output_attrs;

    #[test]
    fn fixture_matches_table1() {
        let c = paper_catalog();
        assert_eq!(c.stats("Product").unwrap().blocks, 3_000.0);
        assert_eq!(c.stats("Division").unwrap().records, 5_000.0);
        assert_eq!(c.stats("Order").unwrap().blocks, 6_000.0);
        assert_eq!(c.stats("Customer").unwrap().records, 20_000.0);
        assert_eq!(c.stats("Part").unwrap().blocks, 10_000.0);
        assert_eq!(c.selectivity("Division", "city"), 0.02);
        assert_eq!(c.selectivity("Customer", "name"), 0.1); // default
        let key: std::collections::BTreeSet<_> =
            ["Product".into(), "Division".into()].into_iter().collect();
        assert_eq!(c.size_override(&key).unwrap().stats.blocks, 5_000.0);
    }

    #[test]
    fn all_queries_validate_against_the_catalog() {
        let s = paper_example();
        for q in s.workload.queries() {
            output_attrs(q.root(), &s.catalog)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", q.name()));
        }
    }

    #[test]
    fn frequencies_match_figure3() {
        let s = paper_example();
        let fq: Vec<f64> = s.workload.queries().iter().map(|q| q.frequency()).collect();
        assert_eq!(fq, [10.0, 0.5, 0.8, 5.0]);
    }

    #[test]
    fn figure7_variant_uses_different_division_filters() {
        let s = paper_figure7_example();
        let q2 = s.workload.query("Q2").unwrap();
        assert!(q2.root().to_string().contains("Division.name='Re'"));
        let q3 = s.workload.query("Q3").unwrap();
        assert!(q3.root().to_string().contains("Division.city='SF'"));
    }

    #[test]
    fn queries_cover_all_five_relations() {
        let s = paper_example();
        assert_eq!(s.workload.base_relations().len(), 5);
    }
}
