//! A TPC-H-flavoured scenario: the classic order-processing star with the
//! kinds of reporting queries the paper's introduction motivates
//! ("generating consolidated global reports"). Cardinalities follow TPC-H
//! scale factor 1, reduced to the SPJ + aggregation dialect this workspace
//! speaks.

use mvdesign_algebra::{parse_query_with, AttrRef, Query};
use mvdesign_catalog::{AttrType, Catalog};
use mvdesign_core::Workload;

use crate::paper::Scenario;

/// Builds the TPC-H-lite catalog (scale factor 1 cardinalities, blocking
/// factor 10):
///
/// | relation | records | notable selectivities |
/// |---|---:|---|
/// | Region   | 5       | |
/// | Nation   | 25      | `name` 1/25 |
/// | Supplier | 10 000  | |
/// | Customer | 150 000 | `segment` 1/5 |
/// | Part     | 200 000 | `brand` 1/25, `ptype` 1/150 |
/// | Orders   | 1 500 000 | `priority` 1/5, `odate` 1/2 |
/// | Lineitem | 6 000 000 | `shipdate` 1/4, `discount` 1/11 |
pub fn tpch_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.relation("Region")
        .attr("rk", AttrType::Int)
        .attr("name", AttrType::Text)
        .records(5.0)
        .blocks(1.0)
        .update_frequency(0.0)
        .selectivity("name", 0.2)
        .finish()
        .expect("static catalog");
    c.relation("Nation")
        .attr("nk", AttrType::Int)
        .attr("name", AttrType::Text)
        .attr("rk", AttrType::Int)
        .records(25.0)
        .blocks(1.0)
        .update_frequency(0.0)
        .selectivity("name", 1.0 / 25.0)
        .finish()
        .expect("static catalog");
    c.relation("Supplier")
        .attr("sk", AttrType::Int)
        .attr("name", AttrType::Text)
        .attr("nk", AttrType::Int)
        .records(10_000.0)
        .blocks(1_000.0)
        .update_frequency(0.1)
        .finish()
        .expect("static catalog");
    c.relation("Customer")
        .attr("ck", AttrType::Int)
        .attr("name", AttrType::Text)
        .attr("nk", AttrType::Int)
        .attr("segment", AttrType::Text)
        .records(150_000.0)
        .blocks(15_000.0)
        .update_frequency(0.2)
        .selectivity("segment", 0.2)
        .finish()
        .expect("static catalog");
    c.relation("Part")
        .attr("pk", AttrType::Int)
        .attr("name", AttrType::Text)
        .attr("brand", AttrType::Text)
        .attr("ptype", AttrType::Text)
        .records(200_000.0)
        .blocks(20_000.0)
        .update_frequency(0.1)
        .selectivity("brand", 1.0 / 25.0)
        .selectivity("ptype", 1.0 / 150.0)
        .finish()
        .expect("static catalog");
    c.relation("Orders")
        .attr("ok", AttrType::Int)
        .attr("ck", AttrType::Int)
        .attr("odate", AttrType::Date)
        .attr("priority", AttrType::Text)
        .records(1_500_000.0)
        .blocks(150_000.0)
        .update_frequency(1.0)
        .selectivity("priority", 0.2)
        .selectivity("odate", 0.5)
        .finish()
        .expect("static catalog");
    c.relation("Lineitem")
        .attr("lk", AttrType::Int)
        .attr("ok", AttrType::Int)
        .attr("pk", AttrType::Int)
        .attr("sk", AttrType::Int)
        .attr("qty", AttrType::Int)
        .attr("price", AttrType::Int)
        .attr("discount", AttrType::Int)
        .attr("shipdate", AttrType::Date)
        .records(6_000_000.0)
        .blocks(600_000.0)
        .update_frequency(1.0)
        .selectivity("shipdate", 0.25)
        .selectivity("discount", 1.0 / 11.0)
        .selectivity("qty", 0.5)
        .finish()
        .expect("static catalog");

    for (a, b, denom) in [
        (("Nation", "rk"), ("Region", "rk"), 5.0),
        (("Supplier", "nk"), ("Nation", "nk"), 25.0),
        (("Customer", "nk"), ("Nation", "nk"), 25.0),
        (("Orders", "ck"), ("Customer", "ck"), 150_000.0),
        (("Lineitem", "ok"), ("Orders", "ok"), 1_500_000.0),
        (("Lineitem", "pk"), ("Part", "pk"), 200_000.0),
        (("Lineitem", "sk"), ("Supplier", "sk"), 10_000.0),
    ] {
        c.set_join_selectivity(AttrRef::new(a.0, a.1), AttrRef::new(b.0, b.1), 1.0 / denom)
            .expect("static catalog");
    }
    c
}

/// The TPC-H-lite reporting workload: six dashboards over the order star,
/// with frequencies skewed toward the cheap operational queries, the way
/// warehouse traffic usually is.
pub fn tpch_lite() -> Scenario {
    let catalog = tpch_catalog();
    let q = |name: &str, fq: f64, sql: &str| {
        Query::new(
            name,
            fq,
            parse_query_with(sql, &catalog).expect("static query parses"),
        )
    };
    let workload = Workload::new([
        q(
            "recent_shipments",
            80.0,
            "SELECT Lineitem.ok, qty, price FROM Lineitem WHERE shipdate > 6/1/95",
        ),
        q(
            "orders_by_priority",
            50.0,
            "SELECT priority, COUNT(*) AS n FROM Orders GROUP BY Orders.priority",
        ),
        q(
            "revenue_by_segment",
            30.0,
            "SELECT segment, SUM(price) AS revenue \
             FROM Customer, Orders, Lineitem \
             WHERE Orders.ck = Customer.ck AND Lineitem.ok = Orders.ok \
             GROUP BY Customer.segment",
        ),
        q(
            "revenue_by_nation",
            10.0,
            "SELECT Nation.name, SUM(price) AS revenue \
             FROM Nation, Customer, Orders, Lineitem \
             WHERE Customer.nk = Nation.nk AND Orders.ck = Customer.ck \
             AND Lineitem.ok = Orders.ok \
             GROUP BY Nation.name",
        ),
        q(
            "volume_by_brand",
            5.0,
            "SELECT brand, SUM(qty) AS volume FROM Part, Lineitem \
             WHERE Lineitem.pk = Part.pk GROUP BY Part.brand",
        ),
        q(
            "supplier_nation_activity",
            2.0,
            "SELECT Nation.name, COUNT(*) AS shipments \
             FROM Supplier, Nation, Lineitem \
             WHERE Supplier.nk = Nation.nk AND Lineitem.sk = Supplier.sk \
             GROUP BY Nation.name",
        ),
    ])
    .expect("static workload is valid");
    Scenario { catalog, workload }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::output_attrs;

    #[test]
    fn all_queries_validate() {
        let s = tpch_lite();
        assert_eq!(s.catalog.len(), 7);
        assert_eq!(s.workload.len(), 6);
        for q in s.workload.queries() {
            output_attrs(q.root(), &s.catalog)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", q.name()));
        }
    }

    #[test]
    fn cardinalities_follow_sf1() {
        let c = tpch_catalog();
        assert_eq!(c.stats("Lineitem").unwrap().records, 6_000_000.0);
        assert_eq!(c.stats("Orders").unwrap().records, 1_500_000.0);
        assert_eq!(c.stats("Nation").unwrap().records, 25.0);
    }

    #[test]
    fn frequencies_skew_operational() {
        let s = tpch_lite();
        let fq: Vec<f64> = s.workload.queries().iter().map(|q| q.frequency()).collect();
        assert_eq!(fq, [80.0, 50.0, 30.0, 10.0, 5.0, 2.0]);
    }

    #[test]
    fn the_order_lineitem_join_is_shared_by_the_revenue_queries() {
        use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};
        use mvdesign_optimizer::Planner;

        let s = tpch_lite();
        let est = CostEstimator::new(
            &s.catalog,
            EstimationMode::Analytic,
            PaperCostModel::default(),
        );
        let mvpp = &mvdesign_core::generate_mvpps(
            &s.workload,
            &est,
            &Planner::new(),
            mvdesign_core::GenerateConfig { max_rotations: 1 },
        )[0];
        // Customer⋈Orders⋈Lineitem (or one of its two-way pieces) must serve
        // both revenue_by_segment and revenue_by_nation.
        let shared = mvpp
            .nodes()
            .iter()
            .filter(|n| {
                matches!(&**n.expr(), mvdesign_algebra::Expr::Join { .. })
                    && mvpp.queries_using(n.id()).len() >= 2
            })
            .count();
        assert!(shared >= 1, "no shared joins in the TPC-H-lite MVPP");
    }
}
