//! Synthetic star-schema workload generation for scaling studies.

use mvdesign_algebra::{
    AggExpr, AggFunc, AttrRef, CompareOp, Expr, JoinCondition, Predicate, Query,
};
use mvdesign_catalog::{AttrType, Catalog};
use mvdesign_core::Workload;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::paper::Scenario;

/// Parameters of a synthetic star schema.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarSchemaConfig {
    /// RNG seed — the scenario is deterministic per seed.
    pub seed: u64,
    /// Number of dimension tables.
    pub dimensions: usize,
    /// Records in the fact table.
    pub fact_records: f64,
    /// Records per dimension table.
    pub dimension_records: f64,
    /// Records per block for all tables.
    pub blocking_factor: f64,
    /// Number of queries to generate.
    pub queries: usize,
    /// Most dimensions any one query joins.
    pub max_joins: usize,
    /// Probability that a joined dimension also gets a selection.
    pub selection_probability: f64,
    /// Zipf skew of query frequencies (0 = uniform).
    pub zipf_s: f64,
    /// Probability that a query is a `GROUP BY` aggregation over its joins
    /// instead of a plain projection.
    pub aggregate_probability: f64,
    /// Update frequency of the fact table (dimensions update 10× less).
    pub fact_update_frequency: f64,
}

impl Default for StarSchemaConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            dimensions: 4,
            fact_records: 1_000_000.0,
            dimension_records: 10_000.0,
            blocking_factor: 10.0,
            queries: 8,
            max_joins: 3,
            selection_probability: 0.6,
            zipf_s: 1.0,
            aggregate_probability: 0.0,
            fact_update_frequency: 1.0,
        }
    }
}

/// Generates star-schema design problems: one fact table `Fact(d0…dk,
/// measure)` with a foreign key per dimension, dimensions `Dim0…Dimk(id,
/// category, region)`, and a workload of random SPJ queries over them.
#[derive(Debug, Clone, Copy, Default)]
pub struct StarSchema {
    config: StarSchemaConfig,
}

impl StarSchema {
    /// A generator with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator with explicit configuration.
    pub fn with_config(config: StarSchemaConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &StarSchemaConfig {
        &self.config
    }

    /// Builds the catalog and workload.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero dimensions or zero
    /// queries).
    pub fn scenario(&self) -> Scenario {
        let cfg = &self.config;
        assert!(cfg.dimensions > 0, "need at least one dimension");
        assert!(cfg.queries > 0, "need at least one query");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let catalog = self.catalog();
        let workload = self.workload(&catalog, &mut rng);
        Scenario { catalog, workload }
    }

    fn catalog(&self) -> Catalog {
        let cfg = &self.config;
        let mut c = Catalog::new();
        {
            let mut fact = c.relation("Fact");
            for d in 0..cfg.dimensions {
                fact = fact.attr(format!("d{d}"), AttrType::Int);
            }
            fact.attr("measure", AttrType::Int)
                .attr("ts", AttrType::Date)
                .records(cfg.fact_records)
                .blocks(cfg.fact_records / cfg.blocking_factor)
                .update_frequency(cfg.fact_update_frequency)
                .selectivity("measure", 0.5)
                .selectivity("ts", 0.5)
                .finish()
                .expect("generated fact schema is valid");
        }
        for d in 0..cfg.dimensions {
            c.relation(format!("Dim{d}"))
                .attr("id", AttrType::Int)
                .attr("category", AttrType::Text)
                .attr("region", AttrType::Text)
                .records(cfg.dimension_records)
                .blocks(cfg.dimension_records / cfg.blocking_factor)
                .update_frequency(cfg.fact_update_frequency / 10.0)
                .selectivity("category", 0.05)
                .selectivity("region", 0.2)
                .finish()
                .expect("generated dimension schema is valid");
            c.set_join_selectivity(
                AttrRef::new("Fact", format!("d{d}")),
                AttrRef::new(format!("Dim{d}"), "id"),
                1.0 / cfg.dimension_records,
            )
            .expect("generated join selectivity is valid");
        }
        c
    }

    fn workload(&self, _catalog: &Catalog, rng: &mut StdRng) -> Workload {
        let cfg = &self.config;
        let queries = (0..cfg.queries).map(|i| {
            let joins = rng.gen_range(1..=cfg.max_joins.min(cfg.dimensions));
            let mut dims: Vec<usize> = (0..cfg.dimensions).collect();
            dims.shuffle(rng);
            dims.truncate(joins);
            dims.sort_unstable();

            let mut expr = Expr::base("Fact");
            for &d in &dims {
                expr = Expr::join(
                    expr,
                    Expr::base(format!("Dim{d}")),
                    JoinCondition::on(
                        AttrRef::new("Fact", format!("d{d}")),
                        AttrRef::new(format!("Dim{d}"), "id"),
                    ),
                );
            }
            let mut preds = Vec::new();
            for &d in &dims {
                if rng.gen_bool(cfg.selection_probability) {
                    let dim = format!("Dim{d}");
                    if rng.gen_bool(0.5) {
                        preds.push(Predicate::cmp(
                            AttrRef::new(dim, "category"),
                            CompareOp::Eq,
                            format!("c{}", rng.gen_range(0..20)),
                        ));
                    } else {
                        preds.push(Predicate::cmp(
                            AttrRef::new(dim, "region"),
                            CompareOp::Eq,
                            format!("r{}", rng.gen_range(0..5)),
                        ));
                    }
                }
            }
            if rng.gen_bool(0.3) {
                preds.push(Predicate::cmp(
                    AttrRef::new("Fact", "measure"),
                    CompareOp::Gt,
                    rng.gen_range(10..1_000),
                ));
            }
            expr = Expr::select(expr, Predicate::and(preds));
            if rng.gen_bool(cfg.aggregate_probability.clamp(0.0, 1.0)) {
                // Aggregate dashboard query: group by the first dimension's
                // category, total and count the measure.
                let group = AttrRef::new(format!("Dim{}", dims[0]), "category");
                expr = Expr::aggregate(
                    expr,
                    [group],
                    [
                        AggExpr::new(AggFunc::Sum, AttrRef::new("Fact", "measure"), "total"),
                        AggExpr::count_star("n"),
                    ],
                );
            } else {
                let mut proj = vec![AttrRef::new("Fact", "measure")];
                for &d in &dims {
                    proj.push(AttrRef::new(format!("Dim{d}"), "category"));
                }
                expr = Expr::project(expr, proj);
            }

            // Zipf-ish frequency: rank i gets 100 / (i+1)^s.
            let fq = 100.0 / ((i + 1) as f64).powf(cfg.zipf_s);
            Query::new(format!("Q{}", i + 1), fq, expr)
        });
        Workload::new(queries).expect("cfg.queries > 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::output_attrs;

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let a = StarSchema::new().scenario();
        let b = StarSchema::new().scenario();
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.workload.queries().len(), b.workload.queries().len());
        for (qa, qb) in a.workload.queries().iter().zip(b.workload.queries()) {
            assert_eq!(qa.root().semantic_key(), qb.root().semantic_key());
            assert_eq!(qa.frequency(), qb.frequency());
        }
    }

    #[test]
    fn queries_validate_against_generated_catalog() {
        let s = StarSchema::new().scenario();
        for q in s.workload.queries() {
            output_attrs(q.root(), &s.catalog)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", q.name()));
        }
    }

    #[test]
    fn respects_dimension_and_query_counts() {
        let s = StarSchema::with_config(StarSchemaConfig {
            dimensions: 6,
            queries: 12,
            ..StarSchemaConfig::default()
        })
        .scenario();
        assert_eq!(s.catalog.len(), 7); // fact + 6 dims
        assert_eq!(s.workload.len(), 12);
    }

    #[test]
    fn frequencies_are_zipf_decreasing() {
        let s = StarSchema::new().scenario();
        let fq: Vec<f64> = s.workload.queries().iter().map(|q| q.frequency()).collect();
        for w in fq.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn zero_skew_means_uniform_frequencies() {
        let s = StarSchema::with_config(StarSchemaConfig {
            zipf_s: 0.0,
            ..StarSchemaConfig::default()
        })
        .scenario();
        for q in s.workload.queries() {
            assert_eq!(q.frequency(), 100.0);
        }
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn zero_dimensions_panics() {
        let _ = StarSchema::with_config(StarSchemaConfig {
            dimensions: 0,
            ..StarSchemaConfig::default()
        })
        .scenario();
    }

    #[test]
    fn aggregate_probability_produces_grouping_queries() {
        let s = StarSchema::with_config(StarSchemaConfig {
            aggregate_probability: 1.0,
            queries: 6,
            ..StarSchemaConfig::default()
        })
        .scenario();
        for q in s.workload.queries() {
            assert!(
                matches!(&**q.root(), mvdesign_algebra::Expr::Aggregate { .. }),
                "{} is not an aggregation",
                q.name()
            );
            output_attrs(q.root(), &s.catalog)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", q.name()));
        }
    }
}
