//! A small text format for authoring design problems — catalog statistics
//! plus SQL queries with frequencies — so `mvdesign-cli` can run on plain
//! files.
//!
//! ```text
//! # The paper's running example (excerpt).
//! relation Division {
//!     attr Did int
//!     attr name text
//!     attr city text
//!     records 5000
//!     blocks 500
//!     update_frequency 1
//!     selectivity city 0.02
//! }
//!
//! join Product.Did Division.Did 0.0002
//! joint_size Product Division 30000 5000
//!
//! query Q1 10 {
//!     SELECT Product.name FROM Product, Division
//!     WHERE Division.city = 'LA' AND Product.Did = Division.Did
//! }
//! ```
//!
//! Statements: `relation NAME { … }` with `attr NAME int|text|date`,
//! `records N`, `blocks N`, `update_frequency F`, `selectivity ATTR F`
//! inside; `join R.A S.B JS`; `joint_size R S … RECORDS BLOCKS`;
//! `index R.A`; `default_selectivity F`; `query NAME FQ { SQL… }`. `#`
//! starts a comment.

use std::error::Error;
use std::fmt;

use mvdesign_algebra::{parse_query_with, AttrRef, ParseError, Query};
use mvdesign_catalog::{AttrType, Catalog, CatalogError, RelationStats};
use mvdesign_core::{Workload, WorkloadError};

use crate::paper::Scenario;

/// Errors raised while parsing the scenario DSL.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DslError {
    /// A malformed statement.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The embedded SQL failed to parse.
    Sql {
        /// 1-based line number of the `query` statement.
        line: usize,
        /// The query's name.
        query: String,
        /// The SQL error.
        source: ParseError,
    },
    /// Catalog-level validation failed.
    Catalog {
        /// 1-based line number.
        line: usize,
        /// The catalog error.
        source: CatalogError,
    },
    /// The workload is empty or has duplicate query names.
    Workload(WorkloadError),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            DslError::Sql {
                line,
                query,
                source,
            } => {
                write!(f, "line {line}: query `{query}`: {source}")
            }
            DslError::Catalog { line, source } => write!(f, "line {line}: {source}"),
            DslError::Workload(e) => write!(f, "workload: {e}"),
        }
    }
}

impl Error for DslError {}

/// Parses a scenario from DSL text.
///
/// # Errors
///
/// Returns [`DslError`] with a line number on any malformed statement,
/// invalid statistic, or unparsable query.
pub fn parse_scenario(text: &str) -> Result<Scenario, DslError> {
    let mut catalog = Catalog::new();
    // Queries are parsed after the whole catalog is known, so forward
    // references to relations work.
    let mut pending_queries: Vec<(usize, String, f64, String)> = Vec::new();

    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]).trim();
        i += 1;
        if line.is_empty() {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words[0] {
            "relation" => {
                let name = header(&words, lineno, "relation NAME {")?;
                i = parse_relation(&lines, i, lineno, name, &mut catalog)?;
            }
            "join" => {
                if words.len() != 4 {
                    return Err(syntax(lineno, "expected `join R.A S.B SELECTIVITY`"));
                }
                let a = attr_ref(words[1], lineno)?;
                let b = attr_ref(words[2], lineno)?;
                let js = number(words[3], lineno)?;
                catalog
                    .set_join_selectivity(a, b, js)
                    .map_err(|source| DslError::Catalog {
                        line: lineno,
                        source,
                    })?;
            }
            "joint_size" => {
                if words.len() < 5 {
                    return Err(syntax(lineno, "expected `joint_size R S … RECORDS BLOCKS`"));
                }
                let blocks = number(words[words.len() - 1], lineno)?;
                let records = number(words[words.len() - 2], lineno)?;
                let rels = words[1..words.len() - 2].iter().map(|r| (*r).into());
                catalog
                    .set_size_override(rels, RelationStats::new(records, blocks))
                    .map_err(|source| DslError::Catalog {
                        line: lineno,
                        source,
                    })?;
            }
            "index" => {
                if words.len() != 2 {
                    return Err(syntax(lineno, "expected `index R.A`"));
                }
                let a = attr_ref(words[1], lineno)?;
                catalog
                    .add_index(a.relation, a.attr)
                    .map_err(|source| DslError::Catalog {
                        line: lineno,
                        source,
                    })?;
            }
            "default_selectivity" => {
                if words.len() != 2 {
                    return Err(syntax(lineno, "expected `default_selectivity F`"));
                }
                let s = number(words[1], lineno)?;
                catalog
                    .set_default_selectivity(s)
                    .map_err(|source| DslError::Catalog {
                        line: lineno,
                        source,
                    })?;
            }
            "query" => {
                if words.len() != 4 || words[3] != "{" {
                    return Err(syntax(lineno, "expected `query NAME FREQUENCY {`"));
                }
                let name = words[1].to_string();
                let fq = number(words[2], lineno)?;
                let mut sql = String::new();
                loop {
                    if i >= lines.len() {
                        return Err(syntax(lineno, "unterminated query block (missing `}`)"));
                    }
                    let body = strip_comment(lines[i]);
                    i += 1;
                    if body.trim() == "}" {
                        break;
                    }
                    sql.push_str(body);
                    sql.push(' ');
                }
                pending_queries.push((lineno, name, fq, sql));
            }
            other => {
                return Err(syntax(
                    lineno,
                    &format!(
                        "unknown statement `{other}` (expected relation/join/joint_size/\
                         index/default_selectivity/query)"
                    ),
                ))
            }
        }
    }

    let mut queries = Vec::with_capacity(pending_queries.len());
    for (line, name, fq, sql) in pending_queries {
        let expr = parse_query_with(&sql, &catalog).map_err(|source| DslError::Sql {
            line,
            query: name.clone(),
            source,
        })?;
        if !(fq.is_finite() && fq >= 0.0) {
            return Err(syntax(line, "query frequency must be non-negative"));
        }
        queries.push(Query::new(name, fq, expr));
    }
    let workload = Workload::new(queries).map_err(DslError::Workload)?;
    Ok(Scenario { catalog, workload })
}

fn parse_relation(
    lines: &[&str],
    mut i: usize,
    start: usize,
    name: &str,
    catalog: &mut Catalog,
) -> Result<usize, DslError> {
    let mut attrs: Vec<(String, AttrType)> = Vec::new();
    let mut records = 0.0;
    let mut blocks = 0.0;
    let mut fu = 0.0;
    let mut selectivities: Vec<(String, f64)> = Vec::new();
    loop {
        if i >= lines.len() {
            return Err(syntax(start, "unterminated relation block (missing `}`)"));
        }
        let lineno = i + 1;
        let line = strip_comment(lines[i]).trim().to_string();
        i += 1;
        if line.is_empty() {
            continue;
        }
        if line == "}" {
            break;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words[0] {
            "attr" => {
                if words.len() != 3 {
                    return Err(syntax(lineno, "expected `attr NAME int|text|date`"));
                }
                let ty = match words[2] {
                    "int" => AttrType::Int,
                    "text" => AttrType::Text,
                    "date" => AttrType::Date,
                    other => return Err(syntax(lineno, &format!("unknown type `{other}`"))),
                };
                attrs.push((words[1].to_string(), ty));
            }
            "records" => records = field(&words, lineno, "records N")?,
            "blocks" => blocks = field(&words, lineno, "blocks N")?,
            "update_frequency" => fu = field(&words, lineno, "update_frequency F")?,
            "selectivity" => {
                if words.len() != 3 {
                    return Err(syntax(lineno, "expected `selectivity ATTR F`"));
                }
                selectivities.push((words[1].to_string(), number(words[2], lineno)?));
            }
            other => return Err(syntax(lineno, &format!("unknown relation field `{other}`"))),
        }
    }
    let mut builder = catalog.relation(name);
    for (attr, ty) in attrs {
        builder = builder.attr(attr, ty);
    }
    builder = builder.records(records).blocks(blocks).update_frequency(fu);
    for (attr, s) in selectivities {
        builder = builder.selectivity(attr, s);
    }
    builder.finish().map_err(|source| DslError::Catalog {
        line: start,
        source,
    })?;
    Ok(i)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn syntax(line: usize, message: &str) -> DslError {
    DslError::Syntax {
        line,
        message: message.to_string(),
    }
}

fn header<'a>(words: &[&'a str], line: usize, expected: &str) -> Result<&'a str, DslError> {
    if words.len() != 3 || words[2] != "{" {
        return Err(syntax(line, &format!("expected `{expected}`")));
    }
    Ok(words[1])
}

fn field(words: &[&str], line: usize, expected: &str) -> Result<f64, DslError> {
    if words.len() != 2 {
        return Err(syntax(line, &format!("expected `{expected}`")));
    }
    number(words[1], line)
}

fn number(text: &str, line: usize) -> Result<f64, DslError> {
    text.parse::<f64>()
        .map_err(|_| syntax(line, &format!("`{text}` is not a number")))
}

fn attr_ref(text: &str, line: usize) -> Result<AttrRef, DslError> {
    AttrRef::parse(text).ok_or_else(|| syntax(line, &format!("`{text}` is not `Relation.attr`")))
}

/// Renders a scenario's *catalog* back to DSL text (queries are appended
/// from the given `(name, fq, sql)` sources, since algebra trees do not
/// round-trip to SQL).
pub fn render_catalog(catalog: &Catalog) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "default_selectivity {}\n",
        catalog.default_selectivity()
    );
    for (name, meta) in catalog.iter() {
        let _ = writeln!(out, "relation {name} {{");
        for a in meta.schema.attributes() {
            let _ = writeln!(out, "    attr {} {}", a.name, a.ty);
        }
        let _ = writeln!(out, "    records {}", meta.stats.records);
        let _ = writeln!(out, "    blocks {}", meta.stats.blocks);
        let _ = writeln!(out, "    update_frequency {}", meta.update_frequency);
        for (attr, s) in &meta.selectivities {
            let _ = writeln!(out, "    selectivity {attr} {s}");
        }
        let _ = writeln!(out, "}}\n");
    }
    for (key, js) in catalog.join_selectivities() {
        let _ = writeln!(out, "join {} {} {js}", key.lo(), key.hi());
    }
    for (rels, o) in catalog.size_overrides() {
        let names: Vec<&str> = rels.iter().map(|r| r.as_str()).collect();
        let _ = writeln!(
            out,
            "joint_size {} {} {}",
            names.join(" "),
            o.stats.records,
            o.stats.blocks
        );
    }
    for (rel, attrs) in catalog.indexes() {
        for attr in attrs {
            let _ = writeln!(out, "index {rel}.{attr}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# two relations and one query
relation Stores {
    attr store int
    attr city text
    records 1000
    blocks 100
    update_frequency 0.5
    selectivity city 0.05
}

relation Sales {
    attr store int
    attr amount int
    records 100000
    blocks 10000
    update_frequency 2
}

join Sales.store Stores.store 0.001
joint_size Sales Stores 100000 20000
default_selectivity 0.2

query by_city 25 {
    SELECT city, SUM(amount) AS total
    FROM Sales, Stores
    WHERE Sales.store = Stores.store
    GROUP BY Stores.city
}
";

    #[test]
    fn parses_a_full_scenario() {
        let s = parse_scenario(SAMPLE).expect("parses");
        assert_eq!(s.catalog.len(), 2);
        assert_eq!(s.workload.len(), 1);
        let q = s.workload.query("by_city").expect("query exists");
        assert_eq!(q.frequency(), 25.0);
        assert_eq!(s.catalog.selectivity("Stores", "city"), 0.05);
        assert_eq!(s.catalog.default_selectivity(), 0.2);
        let key: std::collections::BTreeSet<_> =
            ["Sales".into(), "Stores".into()].into_iter().collect();
        assert_eq!(
            s.catalog.size_override(&key).unwrap().stats.blocks,
            20_000.0
        );
    }

    #[test]
    fn error_carries_line_numbers() {
        let err = parse_scenario("relation R {\n  attr a int\n  records x\n}").unwrap_err();
        match err {
            DslError::Syntax { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("not a number"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn unterminated_blocks_are_reported() {
        assert!(matches!(
            parse_scenario("relation R {\n  attr a int"),
            Err(DslError::Syntax { .. })
        ));
        assert!(matches!(
            parse_scenario(
                "relation R {\n attr a int\n records 1\n blocks 1\n}\nquery q 1 {\nSELECT a FROM R"
            ),
            Err(DslError::Syntax { .. })
        ));
    }

    #[test]
    fn sql_errors_name_the_query() {
        let text = "relation R {\n attr a int\n records 1\n blocks 1\n}\nquery broken 1 {\nSELECT ghost FROM Nope\n}";
        match parse_scenario(text).unwrap_err() {
            DslError::Sql { query, .. } => assert_eq!(query, "broken"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn unknown_statements_are_rejected() {
        assert!(matches!(
            parse_scenario("frobnicate everything"),
            Err(DslError::Syntax { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let s = parse_scenario(
            "# hello\n\nrelation R { # inline\n attr a int\n records 5\n blocks 1\n}\nquery q 1 {\nSELECT a FROM R\n}",
        )
        .expect("parses");
        assert_eq!(s.catalog.len(), 1);
    }

    #[test]
    fn catalog_renders_back_and_reparses() {
        let original = parse_scenario(SAMPLE).expect("parses");
        let text = render_catalog(&original.catalog);
        let reparsed = parse_scenario(&format!(
            "{text}\nquery q 1 {{\nSELECT city FROM Stores\n}}"
        ))
        .expect("round-trips");
        assert_eq!(original.catalog, reparsed.catalog);
    }

    #[test]
    fn empty_workload_is_rejected() {
        assert!(matches!(
            parse_scenario("relation R {\n attr a int\n records 1\n blocks 1\n}"),
            Err(DslError::Workload(WorkloadError::Empty))
        ));
    }

    #[test]
    fn index_statements_parse_and_render() {
        let text = "relation R {\n attr a int\n records 10\n blocks 1\n}\nindex R.a\nquery q 1 {\nSELECT a FROM R\n}";
        let s = parse_scenario(text).expect("parses");
        assert!(s.catalog.has_index("R", "a"));
        let rendered = render_catalog(&s.catalog);
        assert!(rendered.contains("index R.a"), "{rendered}");
        let reparsed = parse_scenario(&format!("{rendered}\nquery q 1 {{\nSELECT a FROM R\n}}"))
            .expect("round-trips");
        assert_eq!(s.catalog, reparsed.catalog);
    }

    #[test]
    fn index_on_unknown_attribute_is_a_catalog_error() {
        let text = "relation R {\n attr a int\n records 10\n blocks 1\n}\nindex R.ghost\nquery q 1 {\nSELECT a FROM R\n}";
        assert!(matches!(
            parse_scenario(text),
            Err(DslError::Catalog { .. })
        ));
    }
}
