//! Ready-made scenarios: the paper's running example and a synthetic
//! star-schema workload generator.
//!
//! [`paper_example`] reconstructs the exact input of the paper's §2 —
//! Table 1's relation statistics, selectivities, joint sizes, and the four
//! warehouse queries with their access frequencies — so every figure and
//! table of the evaluation can be regenerated from one fixture.
//!
//! [`StarSchema`] generates parameterized fact/dimension catalogs with
//! Zipf-distributed query frequencies for the scaling benchmarks.
//!
//! # Example
//!
//! ```
//! use mvdesign_workload::paper_example;
//! let scenario = paper_example();
//! assert_eq!(scenario.workload.len(), 4);
//! assert_eq!(scenario.catalog.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod degenerate;
mod dsl;
mod paper;
mod star;
mod tpch;

pub use crate::degenerate::{
    all_empty, degenerate_scenarios, duplicate_subexpressions, empty_relation, single_query,
    zero_frequency_query, zero_update_frequencies, NamedScenario,
};
pub use crate::dsl::{parse_scenario, render_catalog, DslError};
pub use crate::paper::{paper_catalog, paper_example, paper_figure7_example, Scenario};
pub use crate::star::{StarSchema, StarSchemaConfig};
pub use crate::tpch::{tpch_catalog, tpch_lite};
