//! Degenerate design problems for the correctness audit: empty relations,
//! zero frequencies, single-query MVPPs and duplicated subexpressions.
//!
//! Each case is a small, deterministic [`Scenario`] that historically broke
//! some part of the pipeline (NaN weights from empty relations panicked the
//! search truncation sort; zero-frequency queries exercise the `w(v) = 0`
//! boundary of the greedy; duplicate plans stress MVPP interning). The audit
//! harness runs every oracle over all of them.

use mvdesign_algebra::{AttrRef, CompareOp, Expr, JoinCondition, Predicate, Query};
use mvdesign_catalog::{AttrType, Catalog};
use mvdesign_core::Workload;

use crate::paper::Scenario;

/// A [`Scenario`] with a name describing which edge case it exercises.
#[derive(Debug, Clone)]
pub struct NamedScenario {
    /// Short kebab-case identifier (used in audit output and test names).
    pub name: &'static str,
    /// The catalog and workload of the case.
    pub scenario: Scenario,
}

fn two_relation_catalog(r_records: f64, r_blocks: f64) -> Catalog {
    let mut c = Catalog::new();
    c.relation("R")
        .attr("k", AttrType::Int)
        .attr("x", AttrType::Int)
        .records(r_records)
        .blocks(r_blocks)
        .update_frequency(1.0)
        .selectivity("x", 0.1)
        .finish()
        .expect("R is valid");
    c.relation("S")
        .attr("k", AttrType::Int)
        .attr("y", AttrType::Int)
        .records(5_000.0)
        .blocks(500.0)
        .update_frequency(2.0)
        .selectivity("y", 0.2)
        .finish()
        .expect("S is valid");
    c.set_join_selectivity(
        AttrRef::new("R", "k"),
        AttrRef::new("S", "k"),
        1.0 / 5_000.0,
    )
    .expect("join selectivity is valid");
    c
}

fn join_rs() -> std::sync::Arc<Expr> {
    Expr::join(
        Expr::base("R"),
        Expr::base("S"),
        JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
    )
}

/// An empty `(0 records, 0 blocks)` relation joined against a populated one.
///
/// Every annotation involving the empty side collapses to zero, which once
/// produced NaN node weights (`0·∞` style arithmetic) and panicked the
/// `partial_cmp(..).expect(..)` sorts in the search algorithms.
pub fn empty_relation() -> Scenario {
    let catalog = two_relation_catalog(0.0, 0.0);
    let q = Expr::select(
        join_rs(),
        Predicate::cmp(AttrRef::new("S", "y"), CompareOp::Gt, 3),
    );
    let workload = Workload::new([Query::new("Q1", 10.0, q), Query::new("Q2", 2.0, join_rs())])
        .expect("two queries");
    Scenario { catalog, workload }
}

/// Every relation is empty: the entire cost surface is identically zero, so
/// all selection algorithms must agree and nothing may divide by zero.
pub fn all_empty() -> Scenario {
    let mut catalog = Catalog::new();
    for (name, attrs) in [("R", ["k", "x"]), ("S", ["k", "y"])] {
        let mut b = catalog.relation(name);
        for a in attrs {
            b = b.attr(a, AttrType::Int);
        }
        b.records(0.0)
            .blocks(0.0)
            .update_frequency(0.0)
            .finish()
            .expect("empty relation is valid");
    }
    let workload = Workload::new([Query::new("Q1", 1.0, join_rs())]).expect("one query");
    Scenario { catalog, workload }
}

/// One query with access frequency zero next to a hot one: zero-weight roots
/// must not be materialized for their own sake and must not produce NaN in
/// the Zipf/weight bookkeeping.
pub fn zero_frequency_query() -> Scenario {
    let catalog = two_relation_catalog(10_000.0, 1_000.0);
    let hot = Expr::select(
        join_rs(),
        Predicate::cmp(AttrRef::new("R", "x"), CompareOp::Eq, 1),
    );
    let workload = Workload::new([
        Query::new("hot", 50.0, hot),
        Query::new("never", 0.0, join_rs()),
    ])
    .expect("two queries");
    Scenario { catalog, workload }
}

/// All update frequencies are zero: maintenance is free, so materializing
/// everything is optimal and `Cm`-related terms must vanish exactly.
pub fn zero_update_frequencies() -> Scenario {
    let mut catalog = two_relation_catalog(10_000.0, 1_000.0);
    catalog.set_update_frequency("R", 0.0).expect("R exists");
    catalog.set_update_frequency("S", 0.0).expect("S exists");
    let workload = Workload::new([Query::new("Q1", 5.0, join_rs())]).expect("one query");
    Scenario { catalog, workload }
}

/// The smallest possible MVPP: a single query over a single relation.
pub fn single_query() -> Scenario {
    let mut catalog = Catalog::new();
    catalog
        .relation("R")
        .attr("k", AttrType::Int)
        .attr("x", AttrType::Int)
        .records(10_000.0)
        .blocks(1_000.0)
        .update_frequency(1.0)
        .selectivity("x", 0.1)
        .finish()
        .expect("R is valid");
    let q = Expr::select(
        Expr::base("R"),
        Predicate::cmp(AttrRef::new("R", "x"), CompareOp::Gt, 7),
    );
    let workload = Workload::new([Query::new("only", 3.0, q)]).expect("one query");
    Scenario { catalog, workload }
}

/// Three queries sharing one subexpression, two of them textually identical:
/// interning must merge the duplicates into a single root node and the
/// shared join must appear exactly once.
pub fn duplicate_subexpressions() -> Scenario {
    let catalog = two_relation_catalog(10_000.0, 1_000.0);
    let shared = join_rs();
    let filtered = Expr::select(
        shared.clone(),
        Predicate::cmp(AttrRef::new("S", "y"), CompareOp::Eq, 4),
    );
    let workload = Workload::new([
        Query::new("Q1", 10.0, shared.clone()),
        Query::new("Q2", 7.0, shared),
        Query::new("Q3", 2.0, filtered),
    ])
    .expect("three queries");
    Scenario { catalog, workload }
}

/// Every degenerate case, named, in a fixed order.
pub fn degenerate_scenarios() -> Vec<NamedScenario> {
    vec![
        NamedScenario {
            name: "empty-relation",
            scenario: empty_relation(),
        },
        NamedScenario {
            name: "all-empty",
            scenario: all_empty(),
        },
        NamedScenario {
            name: "zero-frequency-query",
            scenario: zero_frequency_query(),
        },
        NamedScenario {
            name: "zero-update-frequencies",
            scenario: zero_update_frequencies(),
        },
        NamedScenario {
            name: "single-query",
            scenario: single_query(),
        },
        NamedScenario {
            name: "duplicate-subexpressions",
            scenario: duplicate_subexpressions(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::output_attrs;

    #[test]
    fn all_cases_have_valid_queries() {
        for case in degenerate_scenarios() {
            for q in case.scenario.workload.queries() {
                output_attrs(q.root(), &case.scenario.catalog)
                    .unwrap_or_else(|e| panic!("{}/{} invalid: {e}", case.name, q.name()));
            }
        }
    }

    #[test]
    fn duplicate_queries_share_one_root() {
        let s = duplicate_subexpressions();
        let mut mvpp = mvdesign_core::Mvpp::new();
        for q in s.workload.queries() {
            mvpp.insert_query(q.name(), q.frequency(), q.root());
        }
        let (_, _, r1) = &mvpp.roots()[0];
        let (_, _, r2) = &mvpp.roots()[1];
        assert_eq!(r1, r2, "identical plans must intern to the same node");
    }
}
