//! Walks through the paper's running example end to end — §2's queries,
//! Figure 3's annotated MVPP, §4.3's greedy trace, and Table 2's strategy
//! comparison — printing each stage.
//!
//! Run with: `cargo run -p mvdesign --example paper_walkthrough`

use std::collections::BTreeSet;

use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, GenerateConfig, GreedySelection, MaintenanceMode,
    NodeId, TraceVerdict, UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::optimizer::Planner;
use mvdesign::workload::paper_example;

fn main() {
    let scenario = paper_example();
    println!("== The paper's running example (§2) ==\n");
    println!("Table 1 — base relations:");
    for (name, meta) in scenario.catalog.iter() {
        println!(
            "  {:<10} {:>7.0} records {:>7.0} blocks  fu={}",
            name.as_str(),
            meta.stats.records,
            meta.stats.blocks,
            meta.update_frequency
        );
    }
    println!("\nWarehouse queries:");
    for q in scenario.workload.queries() {
        println!("  {} (fq={}): {}", q.name(), q.frequency(), q.root());
    }

    // Figure 4: generate one MVPP per rotation of the merge order.
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let candidates = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig::default(),
    );
    println!("\n== Figure 6: {} candidate MVPPs ==", candidates.len());
    let mut best: Option<(usize, AnnotatedMvpp, BTreeSet<NodeId>, f64)> = None;
    for (i, mvpp) in candidates.into_iter().enumerate() {
        let annotated = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
        let (set, _) = GreedySelection::new().run(&annotated);
        let cost = evaluate(&annotated, &set, MaintenanceMode::SharedRecompute).total;
        println!(
            "  MVPP {i}: {} nodes, total cost after selection {:>12.0}",
            annotated.mvpp().len(),
            cost
        );
        if best.as_ref().is_none_or(|(_, _, _, c)| cost < *c) {
            best = Some((i, annotated, set, cost));
        }
    }
    let (winner, annotated, _chosen, _) = best.expect("at least one candidate");
    println!("  → best: MVPP {winner}");

    // Figure 3: the annotated DAG.
    println!("\n== Figure 3: the chosen MVPP, per-node Ca ==");
    for node in annotated.mvpp().nodes() {
        let ann = annotated.annotation(node.id());
        if node.is_leaf() {
            println!("  {:<18} (base relation)", node.label());
        } else {
            println!(
                "  {:<6} Ca={:>12.0}  w={:>13.0}  {}",
                node.label(),
                ann.ca,
                ann.weight,
                truncate(&node.expr().op_label(), 58)
            );
        }
    }

    // §4.3: the greedy trace.
    let (set, trace) = GreedySelection::new().run(&annotated);
    println!("\n== §4.3: greedy selection trace (Figure 9) ==");
    let lv: Vec<String> = trace
        .initial_lv
        .iter()
        .map(|id| annotated.mvpp().node(*id).label().to_string())
        .collect();
    println!("  LV = ⟨{}⟩", lv.join(", "));
    for step in &trace.steps {
        match &step.verdict {
            TraceVerdict::Materialized => {
                println!(
                    "  {:<6} Cs = {:>13.0} > 0 → materialize",
                    step.label, step.cs
                );
            }
            TraceVerdict::Rejected { pruned } => {
                let names: Vec<String> = pruned
                    .iter()
                    .map(|id| annotated.mvpp().node(*id).label().to_string())
                    .collect();
                println!(
                    "  {:<6} Cs = {:>13.0} ≤ 0 → reject, prune same-branch [{}]",
                    step.label,
                    step.cs,
                    names.join(", ")
                );
            }
            TraceVerdict::SkippedParentsMaterialized => {
                println!("  {:<6} parents already materialized → ignore", step.label);
            }
            TraceVerdict::RemovedRedundant => {
                println!(
                    "  {:<6} all consumers materialized → drop from M",
                    step.label
                );
            }
        }
    }
    let labels: Vec<String> = set
        .iter()
        .map(|id| {
            let n = annotated.mvpp().node(*id);
            format!(
                "{} ({})",
                n.label(),
                describe(annotated.mvpp().node(*id).expr())
            )
        })
        .collect();
    println!("  M = {{{}}}", labels.join(", "));

    // Table 2: strategy comparison.
    println!("\n== Table 2: costs of materialization strategies ==");
    println!(
        "  {:<34} {:>14} {:>14} {:>14}",
        "materialized views", "query proc.", "maintenance", "total"
    );
    let strategies: Vec<(String, BTreeSet<NodeId>)> = vec![
        ("nothing (all virtual)".into(), BTreeSet::new()),
        (
            "all query results".into(),
            annotated.mvpp().roots().iter().map(|r| r.2).collect(),
        ),
        (format!("greedy: {{{}}}", labels.join(", ")), set),
    ];
    for (label, m) in strategies {
        let c = evaluate(&annotated, &m, MaintenanceMode::SharedRecompute);
        println!(
            "  {:<34} {:>14.0} {:>14.0} {:>14.0}",
            truncate(&label, 34),
            c.query_processing,
            c.maintenance,
            c.total
        );
    }

    println!("\nDOT of the chosen MVPP (render with `dot -Tpng`):\n");
    println!("{}", annotated.to_dot("figure3"));
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}

fn describe(expr: &std::sync::Arc<mvdesign::algebra::Expr>) -> String {
    let rels: Vec<String> = expr
        .base_relations()
        .into_iter()
        .map(|r| r.as_str().to_string())
        .collect();
    rels.join("⋈")
}
