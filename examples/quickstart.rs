//! Quickstart: define a catalog, write queries in SQL, design the views.
//!
//! Run with: `cargo run -p mvdesign --example quickstart`

use mvdesign::prelude::*;

fn main() {
    // 1. Describe the base relations and their statistics (what the paper's
    //    Table 1 provides): sizes, selection selectivities, join
    //    selectivities, update frequencies.
    let mut catalog = Catalog::new();
    catalog
        .relation("Sales")
        .attr("product_id", AttrType::Int)
        .attr("store_id", AttrType::Int)
        .attr("amount", AttrType::Int)
        .attr("day", AttrType::Date)
        .records(2_000_000.0)
        .blocks(200_000.0)
        .update_frequency(2.0) // refreshed twice per period
        .selectivity("day", 0.25)
        .selectivity("amount", 0.5)
        .finish()
        .expect("valid relation");
    catalog
        .relation("Stores")
        .attr("store_id", AttrType::Int)
        .attr("city", AttrType::Text)
        .attr("format", AttrType::Text)
        .records(2_000.0)
        .blocks(200.0)
        .update_frequency(0.1)
        .selectivity("city", 0.02)
        .selectivity("format", 0.25)
        .finish()
        .expect("valid relation");
    catalog
        .relation("Products")
        .attr("product_id", AttrType::Int)
        .attr("category", AttrType::Text)
        .records(50_000.0)
        .blocks(5_000.0)
        .update_frequency(0.1)
        .selectivity("category", 0.05)
        .finish()
        .expect("valid relation");
    catalog
        .set_join_selectivity(
            AttrRef::new("Sales", "store_id"),
            AttrRef::new("Stores", "store_id"),
            1.0 / 2_000.0,
        )
        .expect("valid join");
    catalog
        .set_join_selectivity(
            AttrRef::new("Sales", "product_id"),
            AttrRef::new("Products", "product_id"),
            1.0 / 50_000.0,
        )
        .expect("valid join");

    // 2. Write the warehouse queries the way the paper does, with access
    //    frequencies per period.
    let sql = [
        (
            "city_revenue",
            200.0,
            "SELECT Stores.city, amount FROM Sales, Stores \
             WHERE Sales.store_id = Stores.store_id AND Stores.city = 'LA'",
        ),
        (
            "category_revenue",
            40.0,
            "SELECT Products.category, amount FROM Sales, Products \
             WHERE Sales.product_id = Products.product_id",
        ),
        (
            "city_category",
            5.0,
            "SELECT Stores.city, Products.category, amount \
             FROM Sales, Stores, Products \
             WHERE Sales.store_id = Stores.store_id \
             AND Sales.product_id = Products.product_id \
             AND Stores.city = 'LA' AND amount > 100",
        ),
    ];
    let queries = sql.map(|(name, fq, text)| {
        Query::new(
            name,
            fq,
            parse_query_with(text, &catalog).expect("query parses"),
        )
    });
    let workload = Workload::new(queries).expect("non-empty workload");

    // 3. Design: merge plans into MVPP candidates, pick views greedily,
    //    keep the cheapest candidate.
    let design = Designer::new()
        .design(&catalog, &workload)
        .expect("workload is valid against the catalog");

    println!("== mvdesign quickstart ==\n");
    println!(
        "candidate MVPPs evaluated: {} (winner: #{})",
        design.candidate_costs.len(),
        design.candidate_index
    );
    println!("\nmaterialize these intermediate results:");
    for id in &design.materialized {
        let node = design.mvpp.mvpp().node(*id);
        let ann = design.mvpp.annotation(*id);
        println!(
            "  {:>6}  {:>14.0} blocks to build, {:>10.0} to read   {}",
            node.label(),
            ann.ca,
            ann.scan,
            node.expr()
        );
    }
    println!("\ncost per period (block accesses):");
    println!("  query processing: {:>14.0}", design.cost.query_processing);
    println!("  view maintenance: {:>14.0}", design.cost.maintenance);
    println!("  total:            {:>14.0}", design.cost.total);

    // 4. Compare with the two trivial strategies.
    for (label, algo) in [
        (
            "materialize nothing",
            &MaterializeNone as &dyn SelectionAlgorithm,
        ),
        ("materialize all queries", &MaterializeAll),
    ] {
        let m = algo.select(&design.mvpp, MaintenanceMode::SharedRecompute);
        let cost = evaluate(&design.mvpp, &m, MaintenanceMode::SharedRecompute);
        println!("  [{label}] total: {:>14.0}", cost.total);
    }
}
