//! The distributed extension (paper §4.1): the same running example, but
//! with member databases spread over three sites. Shipping remote blocks
//! changes which views are worth materializing — the paper's note that
//! distributed cost "should incorporate the costs of data transferring
//! among different sites" made concrete.
//!
//! Run with: `cargo run -p mvdesign --example distributed_warehouse`

use std::collections::BTreeSet;

use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, GenerateConfig, GreedySelection, MaintenanceMode,
    UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::distributed::{
    DistributedEvaluator, FilterShipping, MarginalGreedy, Placement, Topology,
};
use mvdesign::optimizer::Planner;
use mvdesign::workload::paper_example;

fn main() {
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let mvpp = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig::default(),
    )
    .into_iter()
    .next()
    .expect("paper workload yields candidates");
    let annotated = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);

    // Three sites: the warehouse, a sales system (Order/Customer), and a
    // manufacturing system (Product/Division/Part).
    let topology = Topology::uniform(3, 3.0); // 3 block-accesses per shipped block
    let warehouse = topology.site(0).expect("site 0 exists");
    let sales = topology.site(1).expect("site 1 exists");
    let manufacturing = topology.site(2).expect("site 2 exists");
    let mut placement = Placement::new(warehouse);
    placement.assign("Order", sales);
    placement.assign("Customer", sales);
    placement.assign("Product", manufacturing);
    placement.assign("Division", manufacturing);
    placement.assign("Part", manufacturing);

    let eval = DistributedEvaluator::new(&annotated, topology, placement, FilterShipping::AtSource);

    println!("== distributed warehouse: 3 sites, link cost 3 per block ==\n");

    // Strategy 1: the centralized design (blind to shipping).
    let (central_set, _) = GreedySelection::new().run(&annotated);
    // Strategy 2: the shipping-aware marginal greedy.
    let (dist_set, _) = MarginalGreedy::default().run(&eval);

    let name_of = |set: &BTreeSet<_>| -> String {
        let names: Vec<String> = set
            .iter()
            .map(|id| {
                let n = annotated.mvpp().node(*id);
                let rels: Vec<String> = n
                    .expr()
                    .base_relations()
                    .iter()
                    .map(|r| r.as_str().chars().take(2).collect())
                    .collect();
                format!("{}[{}]", n.label(), rels.join("+"))
            })
            .collect();
        format!("{{{}}}", names.join(", "))
    };

    println!(
        "  {:<44} {:>14} {:>14} {:>14}",
        "strategy", "central cost", "distrib. cost", "Δ shipping"
    );
    for (label, set) in [
        ("materialize nothing", BTreeSet::new()),
        (
            &*format!("paper greedy {}", name_of(&central_set)),
            central_set.clone(),
        ),
        (
            &*format!("shipping-aware {}", name_of(&dist_set)),
            dist_set.clone(),
        ),
    ] {
        let central = evaluate(&annotated, &set, MaintenanceMode::SharedRecompute).total;
        let distributed = eval.evaluate(&set, MaintenanceMode::SharedRecompute).total;
        println!(
            "  {:<44} {:>14.0} {:>14.0} {:>14.0}",
            label,
            central,
            distributed,
            distributed - central
        );
    }

    let central_under_shipping = eval
        .evaluate(&central_set, MaintenanceMode::SharedRecompute)
        .total;
    let aware = eval
        .evaluate(&dist_set, MaintenanceMode::SharedRecompute)
        .total;
    println!(
        "\nshipping-aware selection saves {:.0} block-equivalents over the \
         centralized design ({:.1}%).",
        central_under_shipping - aware,
        100.0 * (central_under_shipping - aware) / central_under_shipping.max(1.0)
    );
}
