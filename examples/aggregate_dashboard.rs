//! An aggregation-heavy "dashboard" workload — the paper's future-work
//! territory (GROUP BY queries), plus two extensions working together:
//! incremental view maintenance and answering queries from the stored views.
//!
//! Run with: `cargo run -p mvdesign --example aggregate_dashboard`

use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, GenerateConfig, GeneticSelection, GreedySelection,
    MaintenanceMode, MaintenancePolicy, SelectionAlgorithm, UpdateWeighting, ViewCatalog, Workload,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::engine::{execute, materialize_view, Generator, GeneratorConfig};
use mvdesign::optimizer::Planner;
use mvdesign::prelude::*;

fn main() {
    // A sales mart: one fact table, two dimensions, dashboards that all
    // group over the same joins.
    let mut catalog = Catalog::new();
    catalog
        .relation("Sales")
        .attr("store", AttrType::Int)
        .attr("product", AttrType::Int)
        .attr("amount", AttrType::Int)
        .attr("day", AttrType::Date)
        .records(1_000_000.0)
        .blocks(100_000.0)
        .update_frequency(24.0) // hourly loads
        .selectivity("day", 0.25)
        .finish()
        .expect("valid relation");
    catalog
        .relation("Stores")
        .attr("store", AttrType::Int)
        .attr("city", AttrType::Text)
        .records(500.0)
        .blocks(50.0)
        .update_frequency(0.1)
        .selectivity("city", 0.05)
        .finish()
        .expect("valid relation");
    catalog
        .relation("Products")
        .attr("product", AttrType::Int)
        .attr("category", AttrType::Text)
        .records(20_000.0)
        .blocks(2_000.0)
        .update_frequency(0.1)
        .selectivity("category", 0.02)
        .finish()
        .expect("valid relation");
    catalog
        .set_join_selectivity(
            AttrRef::new("Sales", "store"),
            AttrRef::new("Stores", "store"),
            1.0 / 500.0,
        )
        .expect("valid join");
    catalog
        .set_join_selectivity(
            AttrRef::new("Sales", "product"),
            AttrRef::new("Products", "product"),
            1.0 / 20_000.0,
        )
        .expect("valid join");

    let q = |name: &str, fq: f64, sql: &str| {
        Query::new(name, fq, parse_query_with(sql, &catalog).expect("parses"))
    };
    let workload = Workload::new([
        q(
            "revenue_by_city",
            500.0,
            "SELECT city, SUM(amount) AS revenue FROM Sales, Stores \
             WHERE Sales.store = Stores.store GROUP BY Stores.city",
        ),
        q(
            "orders_by_city",
            200.0,
            "SELECT city, COUNT(*) AS orders FROM Sales, Stores \
             WHERE Sales.store = Stores.store GROUP BY Stores.city",
        ),
        q(
            "revenue_by_category",
            100.0,
            "SELECT category, SUM(amount) AS revenue FROM Sales, Products \
             WHERE Sales.product = Products.product GROUP BY Products.category",
        ),
        q(
            "big_ticket",
            20.0,
            "SELECT city, MAX(amount) AS biggest FROM Sales, Stores \
             WHERE Sales.store = Stores.store AND amount > 100 GROUP BY Stores.city",
        ),
    ])
    .expect("non-empty workload");

    println!("== aggregation dashboard: 4 GROUP BY queries, hourly fact loads ==\n");

    let est = CostEstimator::new(
        &catalog,
        EstimationMode::Analytic,
        PaperCostModel::default(),
    );
    let mvpp = generate_mvpps(&workload, &est, &Planner::new(), GenerateConfig::default())
        .into_iter()
        .next()
        .expect("candidates exist");

    // The maintenance policy decides what is worth materializing: with full
    // recomputation, refreshing an aggregate view means re-running the join;
    // with delta propagation it costs a fraction.
    println!(
        "{:<26} {:>14} {:>14} {:>14} {:>5}",
        "policy / algorithm", "query proc.", "maintenance", "total", "|M|"
    );
    for (label, policy) in [
        ("recompute, greedy", MaintenancePolicy::Recompute),
        (
            "incremental 5%, greedy",
            MaintenancePolicy::Incremental {
                update_fraction: 0.05,
            },
        ),
    ] {
        let a = AnnotatedMvpp::annotate_with(mvpp.clone(), &est, UpdateWeighting::Max, policy);
        let (m, _) = GreedySelection::new().run(&a);
        let c = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
        println!(
            "{label:<26} {:>14.0} {:>14.0} {:>14.0} {:>5}",
            c.query_processing,
            c.maintenance,
            c.total,
            m.len()
        );
    }
    let a = AnnotatedMvpp::annotate_with(
        mvpp.clone(),
        &est,
        UpdateWeighting::Max,
        MaintenancePolicy::Incremental {
            update_fraction: 0.05,
        },
    );
    let ga = GeneticSelection::default();
    let m = ga.select(&a, MaintenanceMode::SharedRecompute);
    let c = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
    println!(
        "{:<26} {:>14.0} {:>14.0} {:>14.0} {:>5}",
        "incremental 5%, genetic",
        c.query_processing,
        c.maintenance,
        c.total,
        m.len()
    );

    // Materialize the genetic design's views over generated data and answer
    // a dashboard query straight from a view.
    println!("\nmaterializing {} views over generated data…", m.len());
    let mut db = Generator::with_config(GeneratorConfig {
        seed: 99,
        scale: 0.002,
        max_rows: 1_500,
    })
    .database(&catalog);
    let mut views = ViewCatalog::new();
    for id in &m {
        let node = a.mvpp().node(*id);
        views.register(node.label(), std::sync::Arc::clone(node.expr()));
        materialize_view(node.label(), node.expr(), &mut db).expect("view materializes");
    }

    let (_, _, root) = a
        .mvpp()
        .roots()
        .iter()
        .find(|(n, _, _)| n == "revenue_by_city")
        .expect("dashboard query exists");
    let merged = a.mvpp().node(*root).expr();
    let rewritten = views.rewrite(merged);
    let answer = execute(&rewritten, &db).expect("dashboard answers");
    println!(
        "revenue_by_city uses {} stored view(s); first rows:",
        views.match_count(merged)
    );
    for row in answer.canonicalized().rows().iter().take(5) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
}
