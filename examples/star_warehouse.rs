//! Designing views for a synthetic star-schema warehouse, comparing every
//! selection algorithm — the workload the paper's introduction motivates
//! (consolidated reporting over a fact table with dimension lookups).
//!
//! Run with: `cargo run -p mvdesign --example star_warehouse --release`

use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, ExhaustiveSelection, GenerateConfig, GreedySelection,
    MaintenanceMode, MaterializeAll, MaterializeNone, RandomSearch, SelectionAlgorithm,
    SimulatedAnnealing, UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::optimizer::Planner;
use mvdesign::workload::{StarSchema, StarSchemaConfig};

fn main() {
    let config = StarSchemaConfig {
        seed: 2024,
        dimensions: 5,
        fact_records: 5_000_000.0,
        dimension_records: 20_000.0,
        queries: 10,
        max_joins: 3,
        ..StarSchemaConfig::default()
    };
    let scenario = StarSchema::with_config(config).scenario();
    println!("== star-schema warehouse ==");
    println!(
        "  {} relations, {} queries (Zipf frequencies {:.1} … {:.1})\n",
        scenario.catalog.len(),
        scenario.workload.len(),
        scenario
            .workload
            .queries()
            .first()
            .map_or(0.0, |q| q.frequency()),
        scenario
            .workload
            .queries()
            .last()
            .map_or(0.0, |q| q.frequency()),
    );

    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Analytic,
        PaperCostModel::default(),
    );
    let mvpps = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig::default(),
    );
    println!(
        "generated {} candidate MVPPs; using the best per algorithm\n",
        mvpps.len()
    );

    let annotated: Vec<AnnotatedMvpp> = mvpps
        .into_iter()
        .map(|m| AnnotatedMvpp::annotate(m, &est, UpdateWeighting::Max))
        .collect();

    let algorithms: Vec<Box<dyn SelectionAlgorithm>> = vec![
        Box::new(MaterializeNone),
        Box::new(MaterializeAll),
        Box::new(GreedySelection::new()),
        Box::new(RandomSearch::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(ExhaustiveSelection {
            max_nodes: 14,
            ..ExhaustiveSelection::default()
        }),
    ];

    println!(
        "  {:<24} {:>14} {:>14} {:>14} {:>7}",
        "algorithm", "query proc.", "maintenance", "total", "|M|"
    );
    for algo in &algorithms {
        // Each algorithm gets the best candidate MVPP for itself.
        let mut best: Option<(f64, f64, f64, usize)> = None;
        for a in &annotated {
            let m = algo.select(a, MaintenanceMode::SharedRecompute);
            let cost = evaluate(a, &m, MaintenanceMode::SharedRecompute);
            if best.is_none_or(|(_, _, t, _)| cost.total < t) {
                best = Some((cost.query_processing, cost.maintenance, cost.total, m.len()));
            }
        }
        let (qp, maint, total, size) = best.expect("candidates exist");
        println!(
            "  {:<24} {:>14.0} {:>14.0} {:>14.0} {:>7}",
            algo.name(),
            qp,
            maint,
            total,
            size
        );
    }

    println!("\nreading the table:");
    println!("  materialize-none pays the full join cost on every query;");
    println!("  materialize-all pays to refresh every result on every update;");
    println!("  the MVPP algorithms hit the middle by sharing fact⋈dimension joins.");
}
