//! End-to-end test of the answering-queries-using-views loop: design →
//! materialize the chosen views as tables → rewrite queries against them →
//! identical answers at lower measured I/O.

use mvdesign::core::ViewCatalog;
use mvdesign::engine::{execute, materialize_view, measure, Generator, GeneratorConfig};
use mvdesign::prelude::Designer;
use mvdesign::workload::paper_example;

#[test]
fn rewritten_queries_match_and_cost_less() {
    let scenario = paper_example();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("paper workload designs");
    let views = ViewCatalog::from_design(&design);
    assert_eq!(views.len(), design.materialized.len());
    assert!(!views.is_empty());

    // Materialize the views as actual tables.
    let mut db = Generator::with_config(GeneratorConfig {
        seed: 21,
        scale: 0.004,
        max_rows: 400,
    })
    .database(&scenario.catalog);
    for (name, definition) in views.views() {
        materialize_view(name.clone(), definition, &mut db).expect("view materializes");
    }

    let mut any_rewritten = false;
    for q in scenario.workload.queries() {
        // Rewrite against the *merged* plan (the one the MVPP computes), so
        // the shared joins the design materialized are actually present in
        // the tree being rewritten.
        let (_, _, root) = design
            .mvpp
            .mvpp()
            .roots()
            .iter()
            .find(|(n, _, _)| n == q.name())
            .expect("query has a root");
        let merged = design.mvpp.mvpp().node(*root).expr();
        let rewritten = views.rewrite(merged);
        if views.match_count(merged) > 0 {
            any_rewritten = true;
            assert_ne!(rewritten.semantic_key(), merged.semantic_key());
        }

        let expected = execute(q.root(), &db)
            .expect("original executes")
            .canonicalized();
        let got = execute(&rewritten, &db)
            .expect("rewritten executes")
            .canonicalized();
        assert_eq!(
            expected.rows(),
            got.rows(),
            "{} changed after rewrite",
            q.name()
        );

        // Reading the stored view must not cost more than recomputing it.
        let (_, io_merged) = measure(merged, &db, 10.0).expect("merged measures");
        let (_, io_rewritten) = measure(&rewritten, &db, 10.0).expect("rewritten measures");
        assert!(
            io_rewritten.total() <= io_merged.total(),
            "{}: rewritten {} > merged {}",
            q.name(),
            io_rewritten.total(),
            io_merged.total()
        );
    }
    assert!(any_rewritten, "no query used any view");
}

#[test]
fn ad_hoc_query_not_in_the_workload_still_hits_the_views() {
    let scenario = paper_example();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("designs");
    let views = ViewCatalog::from_design(&design);

    // An ad hoc query whose core is the materialized σOrder⋈Customer join
    // with the same (disjunctive) filter the MVPP pushed down.
    let merged_q4_root = design
        .mvpp
        .mvpp()
        .roots()
        .iter()
        .find(|(n, _, _)| n == "Q4")
        .map(|(_, _, id)| design.mvpp.mvpp().node(*id).expr())
        .expect("Q4 exists");
    // Build a *new* query over the same shared join: project different
    // attributes out of Q4's input subtree.
    let q4_input = match &**merged_q4_root {
        mvdesign::algebra::Expr::Project { input, .. } => input,
        other => panic!("expected projection root, got {other}"),
    };
    let ad_hoc = mvdesign::algebra::Expr::project(
        std::sync::Arc::clone(q4_input),
        [mvdesign::algebra::AttrRef::new("Customer", "name")],
    );
    assert!(
        views.match_count(&ad_hoc) > 0,
        "ad hoc query should reuse a view"
    );

    let mut db = Generator::with_config(GeneratorConfig {
        seed: 3,
        scale: 0.004,
        max_rows: 300,
    })
    .database(&scenario.catalog);
    for (name, definition) in views.views() {
        materialize_view(name.clone(), definition, &mut db).expect("materializes");
    }
    let direct = execute(&ad_hoc, &db).expect("direct").canonicalized();
    let via_views = execute(&views.rewrite(&ad_hoc), &db)
        .expect("rewritten")
        .canonicalized();
    assert_eq!(direct.rows(), via_views.rows());
}
