//! Reproduction assertions for the paper's worked example: the qualitative
//! claims of §2 (Table 2), §4.2 (Figures 5–8) and §4.3 (the Figure-9 trace)
//! must hold in this implementation. EXPERIMENTS.md records the quantitative
//! paper-vs-measured comparison; these tests pin the *shape*.

use std::collections::BTreeSet;

use mvdesign::algebra::{Expr, Predicate};
use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, GenerateConfig, MaintenanceMode, NodeId, TraceVerdict,
    UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::optimizer::Planner;
use mvdesign::prelude::Designer;
use mvdesign::workload::{paper_example, paper_figure7_example};

/// Finds the node joining exactly this set of base relations.
fn join_node(a: &AnnotatedMvpp, rels: &[&str]) -> Option<NodeId> {
    let want: BTreeSet<_> = rels.iter().map(|r| (*r).into()).collect();
    a.mvpp()
        .nodes()
        .iter()
        .find(|n| matches!(&**n.expr(), Expr::Join { .. }) && n.expr().base_relations() == want)
        .map(|n| n.id())
}

fn best_design() -> (AnnotatedMvpp, BTreeSet<NodeId>) {
    let scenario = paper_example();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("paper workload designs");
    (design.mvpp, design.materialized)
}

#[test]
fn headline_result_the_designer_materializes_tmp2_and_tmp4() {
    // Paper §4.3: "As a result, tmp2 and tmp4 will be materialized" — tmp2
    // is the Product⋈(σ Division) join, tmp4 the (σ Order)⋈Customer join.
    let (mvpp, m) = best_design();
    assert_eq!(m.len(), 2, "expected exactly two views, got {m:?}");
    let pd = join_node(&mvpp, &["Product", "Division"]).expect("P⋈D node exists");
    let oc = join_node(&mvpp, &["Customer", "Order"]).expect("O⋈C node exists");
    assert!(m.contains(&pd), "P⋈D (the paper's tmp2) not materialized");
    assert!(m.contains(&oc), "O⋈C (the paper's tmp4) not materialized");
}

#[test]
fn table2_strategy_ordering_holds() {
    // Table 2's qualitative claims:
    //  * materializing everything virtual is the worst listed full strategy;
    //  * {tmp2, tmp4} beats materializing all application queries;
    //  * adding Q3's private node (tmp6) to {tmp2, tmp4} does not help.
    let (mvpp, m) = best_design();
    let mode = MaintenanceMode::SharedRecompute;

    let none = evaluate(&mvpp, &BTreeSet::new(), mode).total;
    let chosen = evaluate(&mvpp, &m, mode).total;
    let all_queries: BTreeSet<_> = mvpp.mvpp().roots().iter().map(|r| r.2).collect();
    let all = evaluate(&mvpp, &all_queries, mode).total;

    assert!(
        chosen < all,
        "{{tmp2,tmp4}} ({chosen}) must beat all-queries ({all})"
    );
    assert!(
        all < none,
        "all-queries ({all}) must beat all-virtual ({none})"
    );

    // {tmp2, tmp4} + Q3's four-way join node: strictly more maintenance,
    // no additional sharing → no better (paper's 97.82M row).
    if let Some(tmp6) = join_node(&mvpp, &["Customer", "Division", "Order", "Product"]) {
        let mut with_tmp6 = m.clone();
        with_tmp6.insert(tmp6);
        let worse = evaluate(&mvpp, &with_tmp6, mode).total;
        assert!(
            worse >= chosen,
            "adding tmp6 should not help: {worse} < {chosen}"
        );
    }

    // Relative magnitudes: all-virtual is several times the chosen design,
    // as in the paper (95.671M vs 37.577M ≈ 2.5×).
    assert!(none / chosen > 2.0, "ratio {:.2}", none / chosen);
}

#[test]
fn figure9_trace_first_pick_is_the_order_customer_join() {
    // §4.3 starts with LV = ⟨tmp4, …⟩ and materializes tmp4 first: the
    // O⋈C join has the largest weight (it serves Q3 + Q4 with fq 5.8).
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("designs");
    let a = &design.mvpp;
    let oc = join_node(a, &["Customer", "Order"]).expect("O⋈C exists");
    assert_eq!(
        design.trace.initial_lv.first().copied(),
        Some(oc),
        "LV must start at the O⋈C join"
    );
    // Its Cs equals its weight (nothing materialized yet): the paper's
    // Cs(tmp4) = (5 + 0.8)·Ca − Cm = 4.8·Ca.
    let first = &design.trace.steps[0];
    assert_eq!(first.node, oc);
    assert_eq!(first.verdict, TraceVerdict::Materialized);
    let ann = a.annotation(oc);
    assert!((first.cs - ann.weight).abs() < 1e-6);
    assert!((ann.weight - (ann.fq_weight - ann.fu_weight) * ann.ca).abs() < 1e-6);
    assert_eq!(ann.fq_weight, 5.8, "O⋈C serves Q3 (0.8) and Q4 (5)");
    let _ = est;
}

#[test]
fn figure9_weight_formula_matches_hand_computation() {
    // Reproduce the exact structure of the paper's Cs(tmp2) computation:
    // Cs = (fq(Q1)+fq(Q2)+fq(Q3))·Ca(tmp2) − Cm(tmp2) with Ca = Cm.
    let (mvpp, _) = best_design();
    let pd = join_node(&mvpp, &["Product", "Division"]).expect("P⋈D exists");
    let ann = mvpp.annotation(pd);
    assert_eq!(ann.fq_weight, 10.0 + 0.5 + 0.8, "P⋈D serves Q1, Q2, Q3");
    assert_eq!(ann.fu_weight, 1.0);
    assert_eq!(ann.cm, ann.ca);
    assert!((ann.weight - (11.3 * ann.ca - ann.ca)).abs() < 1e-6);
}

#[test]
fn figure2_common_subexpression_is_merged_for_q1_q2() {
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let mvpps = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig::default(),
    );
    for m in &mvpps {
        let a = AnnotatedMvpp::annotate(m.clone(), &est, UpdateWeighting::Max);
        let pd = join_node(&a, &["Product", "Division"]).expect("P⋈D exists");
        let users = m.queries_using(pd);
        assert!(
            users.len() >= 2,
            "P⋈D must be shared by at least Q1 and Q2, used by {users:?}"
        );
    }
}

#[test]
fn figure6_rotations_include_an_inferior_candidate() {
    // The paper: MVPPs (a)/(b) are equivalent and good; (c), which preserves
    // Q3's long join pattern first, is "not desirable". After selection, at
    // least one rotation must cost at least as much as the best, and the
    // designer must pick the best.
    let scenario = paper_example();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("designs");
    let best = design.cost.total;
    let max = design
        .candidate_costs
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(max >= best);
    assert!(
        design.candidate_costs.iter().any(|c| *c > best),
        "expected at least one inferior rotation, costs: {:?}",
        design.candidate_costs
    );
}

#[test]
fn figure8_leaf_filters_are_disjunctions_in_the_variant_workload() {
    // The Figures 5–8 variant: Division is filtered by city='LA' (Q1),
    // name='Re' (Q2) and city='SF' (Q3); Figure 8 pushes
    // city='LA' ∨ city='SF' ∨ name='Re' down to the Division leaf.
    let scenario = paper_figure7_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let mvpp = &generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )[0];
    let sigma_div = mvpp
        .nodes()
        .iter()
        .find(|n| {
            matches!(&**n.expr(), Expr::Select { input, .. } if input.is_base())
                && n.expr().base_relations().contains("Division")
        })
        .expect("σ over Division exists");
    match &**sigma_div.expr() {
        Expr::Select { predicate, .. } => match predicate {
            Predicate::Or(parts) => assert_eq!(parts.len(), 3, "got {predicate}"),
            other => panic!("expected a 3-way disjunction, got {other}"),
        },
        _ => unreachable!(),
    }

    // And the Order leaf gets date>7/1/96 ∨ quantity>100 (as in Figure 8).
    let sigma_ord = mvpp
        .nodes()
        .iter()
        .find(|n| {
            matches!(&**n.expr(), Expr::Select { input, .. } if input.is_base())
                && n.expr().base_relations().contains("Order")
        })
        .expect("σ over Order exists");
    match &**sigma_ord.expr() {
        Expr::Select { predicate, .. } => {
            assert!(matches!(predicate, Predicate::Or(parts) if parts.len() == 2));
        }
        _ => unreachable!(),
    }
}

#[test]
fn figure5_individual_plans_filter_division_before_joining() {
    // The individually-optimal plans join Product with the *filtered*
    // Division (0.02 selectivity) rather than the raw 500-block relation.
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let planner = Planner::new();
    let q1 = scenario.workload.query("Q1").expect("Q1");
    let plan = planner.optimize(q1.root(), &est);
    let mut sigma_below_join = false;
    mvdesign::algebra::postorder(&plan, &mut |n| {
        if let Expr::Join { left, right, .. } = &**n {
            for side in [left, right] {
                if side.base_relations() == ["Division".into()].into()
                    && format!("{side}").contains("city='LA'")
                {
                    sigma_below_join = true;
                }
            }
        }
    });
    assert!(sigma_below_join, "plan: {plan}");
}

#[test]
fn greedy_is_near_exhaustive_optimum_on_the_paper_example() {
    use mvdesign::core::{ExhaustiveSelection, SelectionAlgorithm};
    let (mvpp, m) = best_design();
    let mode = MaintenanceMode::SharedRecompute;
    let greedy = evaluate(&mvpp, &m, mode).total;
    let opt_set = ExhaustiveSelection {
        max_nodes: 16,
        ..ExhaustiveSelection::default()
    }
    .select(&mvpp, mode);
    let optimum = evaluate(&mvpp, &opt_set, mode).total;
    assert!(greedy >= optimum - 1e-6);
    assert!(
        greedy <= optimum * 1.05,
        "greedy {greedy} should be within 5% of the optimum {optimum}"
    );
}

#[test]
fn update_frequency_shifts_the_design_toward_virtual_views() {
    // Sensitivity direction the cost model must exhibit: refresh the base
    // relations 100× more often and materialization becomes unattractive.
    let mut scenario = paper_example();
    let mut busy = mvdesign::catalog::Catalog::new();
    for (name, meta) in scenario.catalog.iter() {
        let mut m = meta.clone();
        m.update_frequency = 100.0;
        let _ = name;
        busy.insert_relation(m).expect("valid");
    }
    // Copy join selectivities and size overrides.
    let pairs: Vec<_> = scenario
        .catalog
        .join_selectivities()
        .map(|(k, v)| (k.lo().clone(), k.hi().clone(), v))
        .collect();
    for (a, b, js) in pairs {
        busy.set_join_selectivity(a, b, js).expect("valid");
    }
    let overrides: Vec<_> = scenario
        .catalog
        .size_overrides()
        .map(|(k, v)| (k.clone(), v.stats))
        .collect();
    for (rels, stats) in overrides {
        busy.set_size_override(rels, stats).expect("valid");
    }
    scenario.catalog = busy;

    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("designs");
    // With 100× update cost, fewer (or equally many) views than the
    // original two, and total cost dominated by query processing.
    assert!(design.materialized.len() <= 2);
}
