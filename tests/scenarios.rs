//! The shipped scenario files must stay in sync with the programmatic
//! fixtures: same catalogs, same queries, same designs.

use mvdesign::prelude::Designer;
use mvdesign::workload::{paper_example, parse_scenario, tpch_lite};

fn load(path: &str) -> mvdesign::workload::Scenario {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run tests from the workspace root)"));
    parse_scenario(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn shipped_paper_scenario_matches_the_fixture() {
    let shipped = load("../../scenarios/paper.mvd");
    let fixture = paper_example();
    assert_eq!(shipped.catalog.len(), fixture.catalog.len());
    assert_eq!(shipped.workload.len(), fixture.workload.len());
    for q in fixture.workload.queries() {
        let other = shipped
            .workload
            .query(q.name())
            .unwrap_or_else(|| panic!("{} missing from shipped file", q.name()));
        assert_eq!(
            q.root().semantic_key(),
            other.root().semantic_key(),
            "{} differs",
            q.name()
        );
        assert_eq!(q.frequency(), other.frequency());
    }
    // Same design, same cost.
    let a = Designer::new()
        .design(&shipped.catalog, &shipped.workload)
        .expect("designs");
    let b = Designer::new()
        .design(&fixture.catalog, &fixture.workload)
        .expect("designs");
    assert!((a.cost.total - b.cost.total).abs() < 1e-6);
    assert_eq!(a.materialized.len(), b.materialized.len());
}

#[test]
fn shipped_tpch_scenario_matches_the_fixture() {
    let shipped = load("../../scenarios/tpch.mvd");
    let fixture = tpch_lite();
    assert_eq!(shipped.catalog.len(), fixture.catalog.len());
    assert_eq!(shipped.workload.len(), fixture.workload.len());
    for q in fixture.workload.queries() {
        let other = shipped
            .workload
            .query(q.name())
            .unwrap_or_else(|| panic!("{} missing from shipped file", q.name()));
        assert_eq!(
            q.root().semantic_key(),
            other.root().semantic_key(),
            "{} differs",
            q.name()
        );
    }
    let design = Designer::new()
        .design(&shipped.catalog, &shipped.workload)
        .expect("designs");
    assert!(!design.materialized.is_empty());
}
