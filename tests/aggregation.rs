//! End-to-end tests for aggregation queries — the paper's first "future
//! work" item, implemented across the whole stack: parser → estimator →
//! optimizer → MVPP → engine.

use std::collections::BTreeSet;

use mvdesign::algebra::{
    output_attrs, parse_query_with, AggExpr, AggFunc, AttrRef, Expr, Query, Value, AGG_RELATION,
};
use mvdesign::catalog::{AttrType, Catalog};
use mvdesign::core::{evaluate, generate_mvpps, GenerateConfig, MaintenanceMode, Workload};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::engine::{execute, Database, Generator, GeneratorConfig, Table};
use mvdesign::optimizer::Planner;
use mvdesign::prelude::Designer;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.relation("Sales")
        .attr("store", AttrType::Int)
        .attr("product", AttrType::Int)
        .attr("amount", AttrType::Int)
        .records(100_000.0)
        .blocks(10_000.0)
        .update_frequency(1.0)
        .selectivity("amount", 0.5)
        .finish()
        .expect("valid");
    c.relation("Stores")
        .attr("store", AttrType::Int)
        .attr("city", AttrType::Text)
        .records(1_000.0)
        .blocks(100.0)
        .update_frequency(0.1)
        .selectivity("city", 0.05)
        .finish()
        .expect("valid");
    c.set_join_selectivity(
        AttrRef::new("Sales", "store"),
        AttrRef::new("Stores", "store"),
        1.0 / 1_000.0,
    )
    .expect("valid");
    c
}

fn tiny_db() -> Database {
    let mut db = Database::new();
    db.insert_table(Table::new(
        "Sales",
        [
            AttrRef::new("Sales", "store"),
            AttrRef::new("Sales", "product"),
            AttrRef::new("Sales", "amount"),
        ],
        vec![
            vec![Value::Int(1), Value::Int(10), Value::Int(5)],
            vec![Value::Int(1), Value::Int(11), Value::Int(7)],
            vec![Value::Int(2), Value::Int(10), Value::Int(11)],
            vec![Value::Int(2), Value::Int(12), Value::Int(1)],
            vec![Value::Int(3), Value::Int(13), Value::Int(2)],
        ],
    ));
    db.insert_table(Table::new(
        "Stores",
        [
            AttrRef::new("Stores", "store"),
            AttrRef::new("Stores", "city"),
        ],
        vec![
            vec![Value::Int(1), Value::text("LA")],
            vec![Value::Int(2), Value::text("LA")],
            vec![Value::Int(3), Value::text("SF")],
        ],
    ));
    db
}

#[test]
fn parser_accepts_group_by_and_aggregates() {
    let c = catalog();
    let q = parse_query_with(
        "SELECT Stores.city, SUM(amount) AS total, COUNT(*) \
         FROM Sales, Stores \
         WHERE Sales.store = Stores.store \
         GROUP BY Stores.city",
        &c,
    )
    .expect("parses");
    match &*q {
        Expr::Aggregate { group_by, aggs, .. } => {
            assert_eq!(group_by, &[AttrRef::new("Stores", "city")]);
            assert_eq!(aggs.len(), 2);
            assert_eq!(aggs[0].alias.as_str(), "total");
            assert_eq!(aggs[1].alias.as_str(), "count_star");
        }
        other => panic!("expected aggregate root, got {other}"),
    }
    // Output schema: the group key plus the two synthesized attributes.
    let attrs = output_attrs(&q, &c).expect("infers");
    assert_eq!(attrs.len(), 3);
    assert_eq!(attrs[1], AttrRef::new(AGG_RELATION, "total"));
}

#[test]
fn parser_infers_group_keys_from_plain_select_items() {
    let c = catalog();
    let q = parse_query_with(
        "SELECT city, MAX(amount) FROM Sales, Stores WHERE Sales.store = Stores.store",
        &c,
    )
    .expect("parses");
    match &*q {
        Expr::Aggregate { group_by, .. } => {
            assert_eq!(group_by, &[AttrRef::new("Stores", "city")]);
        }
        other => panic!("expected aggregate root, got {other}"),
    }
}

#[test]
fn parser_rejects_ungrouped_plain_attribute() {
    let c = catalog();
    let err = parse_query_with(
        "SELECT city, product, SUM(amount) FROM Sales, Stores \
         WHERE Sales.store = Stores.store GROUP BY Stores.city",
        &c,
    )
    .unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
}

#[test]
fn parser_reorders_interleaved_select_list_with_projection() {
    let c = catalog();
    let q = parse_query_with(
        "SELECT SUM(amount) AS total, city FROM Sales, Stores \
         WHERE Sales.store = Stores.store GROUP BY Stores.city",
        &c,
    )
    .expect("parses");
    // Aggregate output is (city, total); the listed order is (total, city),
    // so a reordering projection sits on top.
    match &*q {
        Expr::Project { attrs, .. } => {
            assert_eq!(attrs[0], AttrRef::new(AGG_RELATION, "total"));
            assert_eq!(attrs[1], AttrRef::new("Stores", "city"));
        }
        other => panic!("expected reordering projection, got {other}"),
    }
}

#[test]
fn engine_groups_and_aggregates_correctly() {
    let c = catalog();
    let q = parse_query_with(
        "SELECT Stores.city, SUM(amount) AS total, COUNT(*) AS n, \
                MIN(amount) AS lo, MAX(amount) AS hi, AVG(amount) AS mean \
         FROM Sales, Stores WHERE Sales.store = Stores.store \
         GROUP BY Stores.city",
        &c,
    )
    .expect("parses");
    let out = execute(&q, &tiny_db()).expect("executes");
    let rows = out.canonicalized();
    // LA: amounts 5,7,11,1 → total 24, n 4, min 1, max 11, avg 6.
    // SF: amount 2 → total 2, n 1, min 2, max 2, avg 2.
    assert_eq!(rows.len(), 2);
    let la: Vec<&Value> = rows.rows()[0].iter().collect();
    assert_eq!(*la[0], Value::text("LA"));
    assert_eq!(*la[1], Value::Int(24));
    assert_eq!(*la[2], Value::Int(4));
    assert_eq!(*la[3], Value::Int(1));
    assert_eq!(*la[4], Value::Int(11));
    assert_eq!(*la[5], Value::Int(6));
    let sf: Vec<&Value> = rows.rows()[1].iter().collect();
    assert_eq!(*sf[0], Value::text("SF"));
    assert_eq!(*sf[1], Value::Int(2));
}

#[test]
fn global_aggregate_without_group_by() {
    let c = catalog();
    let q =
        parse_query_with("SELECT COUNT(*) AS n, SUM(amount) AS s FROM Sales", &c).expect("parses");
    let out = execute(&q, &tiny_db()).expect("executes");
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows()[0][0], Value::Int(5));
    assert_eq!(out.rows()[0][1], Value::Int(26));
}

#[test]
fn optimizer_preserves_aggregate_results() {
    let c = catalog();
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    let q = parse_query_with(
        "SELECT Stores.city, SUM(amount) AS total FROM Sales, Stores \
         WHERE Sales.store = Stores.store AND Stores.city = 'LA' \
         GROUP BY Stores.city",
        &c,
    )
    .expect("parses");
    let opt = Planner::new().optimize(&q, &est);
    let db = tiny_db();
    let a = execute(&q, &db).expect("original").canonicalized();
    let b = execute(&opt, &db).expect("optimized").canonicalized();
    assert_eq!(a.rows(), b.rows());
    assert!(est.tree_cost(&opt) <= est.tree_cost(&q));
}

#[test]
fn estimator_bounds_group_count_by_input() {
    let c = catalog();
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    let q = parse_query_with(
        "SELECT city, COUNT(*) FROM Sales, Stores WHERE Sales.store = Stores.store \
         GROUP BY Stores.city",
        &c,
    )
    .expect("parses");
    let stats = est.stats(&q);
    // s(city) = 0.05 ⇒ ≈20 distinct cities.
    assert!(stats.records <= 21.0, "groups: {}", stats.records);
    assert!(stats.records >= 1.0);
    assert!(est.tree_cost(&q).is_finite());
}

#[test]
fn two_aggregate_queries_share_their_spj_core_in_the_mvpp() {
    let c = catalog();
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    let q1 = parse_query_with(
        "SELECT city, SUM(amount) AS total FROM Sales, Stores \
         WHERE Sales.store = Stores.store GROUP BY Stores.city",
        &c,
    )
    .expect("parses");
    let q2 = parse_query_with(
        "SELECT city, COUNT(*) AS n FROM Sales, Stores \
         WHERE Sales.store = Stores.store GROUP BY Stores.city",
        &c,
    )
    .expect("parses");
    let w = Workload::new([Query::new("A", 5.0, q1), Query::new("B", 2.0, q2)]).expect("valid");
    let mvpp = &generate_mvpps(
        &w,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )[0];
    // The Sales⋈Stores join is computed once, feeding both aggregations.
    let shared = mvpp
        .nodes()
        .iter()
        .find(|n| matches!(&**n.expr(), Expr::Join { .. }))
        .expect("join node exists");
    assert_eq!(mvpp.queries_using(shared.id()).len(), 2);

    // And the merged roots still compute the right answers.
    let db = tiny_db();
    for (name, _, root) in mvpp.roots() {
        let original = w.query(name).expect("known query");
        let a = execute(original.root(), &db)
            .expect("original")
            .canonicalized();
        let b = execute(mvpp.node(*root).expr(), &db)
            .expect("merged")
            .canonicalized();
        assert_eq!(a.rows(), b.rows(), "merge changed {name}");
    }
}

#[test]
fn designer_handles_aggregation_workloads_end_to_end() {
    let c = catalog();
    let q = |name: &str, fq: f64, sql: &str| {
        Query::new(name, fq, parse_query_with(sql, &c).expect("parses"))
    };
    let w = Workload::new([
        q(
            "by_city",
            20.0,
            "SELECT city, SUM(amount) AS total FROM Sales, Stores \
             WHERE Sales.store = Stores.store GROUP BY Stores.city",
        ),
        q(
            "by_product",
            4.0,
            "SELECT Sales.product, COUNT(*) AS n FROM Sales, Stores \
             WHERE Sales.store = Stores.store GROUP BY Sales.product",
        ),
        q(
            "raw",
            1.0,
            "SELECT city, amount FROM Sales, Stores WHERE Sales.store = Stores.store",
        ),
    ])
    .expect("valid");
    let design = Designer::new().design(&c, &w).expect("designs");
    assert!(design.cost.total.is_finite());
    // Materializing the shared join beats recomputing it per query.
    let none = evaluate(
        &design.mvpp,
        &BTreeSet::new(),
        MaintenanceMode::SharedRecompute,
    );
    assert!(design.cost.total <= none.total);
}

#[test]
fn aggregates_over_generated_data_roundtrip_through_measure() {
    let c = catalog();
    let db = Generator::with_config(GeneratorConfig {
        seed: 5,
        scale: 0.01,
        max_rows: 500,
    })
    .database(&c);
    let q = parse_query_with(
        "SELECT city, COUNT(*) AS n FROM Sales, Stores \
         WHERE Sales.store = Stores.store GROUP BY Stores.city",
        &c,
    )
    .expect("parses");
    let (table, io) = mvdesign::engine::measure(&q, &db, 10.0).expect("measures");
    let plain = execute(&q, &db).expect("executes");
    assert_eq!(table.canonicalized().rows(), plain.canonicalized().rows());
    assert!(io.total() > 0.0);
}

#[test]
fn hand_built_aggregate_expr_works_without_parser() {
    let sum = AggExpr::new(AggFunc::Sum, AttrRef::new("Sales", "amount"), "total");
    let e = Expr::aggregate(Expr::base("Sales"), [AttrRef::new("Sales", "store")], [sum]);
    let out = execute(&e, &tiny_db()).expect("executes");
    assert_eq!(out.len(), 3); // three stores
    let rows = out.canonicalized();
    assert_eq!(rows.rows()[0], vec![Value::Int(1), Value::Int(12)]);
}

#[test]
fn having_filters_groups() {
    let c = catalog();
    let q = parse_query_with(
        "SELECT Stores.city, SUM(amount) AS total FROM Sales, Stores \
         WHERE Sales.store = Stores.store GROUP BY Stores.city \
         HAVING total > 10",
        &c,
    )
    .expect("parses");
    let out = execute(&q, &tiny_db()).expect("executes");
    // LA total 24 passes, SF total 2 does not.
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows()[0][0], Value::text("LA"));
    assert_eq!(out.rows()[0][1], Value::Int(24));
}

#[test]
fn having_can_reference_group_keys_and_count_star() {
    let c = catalog();
    let q = parse_query_with(
        "SELECT Stores.city, COUNT(*) AS n FROM Sales, Stores \
         WHERE Sales.store = Stores.store GROUP BY Stores.city \
         HAVING n >= 1 AND Stores.city = 'SF'",
        &c,
    )
    .expect("parses");
    let out = execute(&q, &tiny_db()).expect("executes");
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows()[0][1], Value::Int(1));
}

#[test]
fn having_without_aggregation_is_rejected() {
    let c = catalog();
    let err = parse_query_with("SELECT city FROM Stores HAVING city = 'LA'", &c).unwrap_err();
    assert!(err.to_string().contains("HAVING"), "{err}");
}

#[test]
fn having_queries_survive_the_designer() {
    let c = catalog();
    let q1 = parse_query_with(
        "SELECT Stores.city, SUM(amount) AS total FROM Sales, Stores \
         WHERE Sales.store = Stores.store GROUP BY Stores.city HAVING total > 10",
        &c,
    )
    .expect("parses");
    let q2 = parse_query_with(
        "SELECT city, amount FROM Sales, Stores WHERE Sales.store = Stores.store",
        &c,
    )
    .expect("parses");
    let w =
        Workload::new([Query::new("H", 5.0, q1.clone()), Query::new("R", 1.0, q2)]).expect("valid");
    let design = Designer::new().design(&c, &w).expect("designs");
    assert!(design.cost.total.is_finite());
    // The HAVING query's merged plan still returns the right rows.
    let db = tiny_db();
    let (_, _, root) = design
        .mvpp
        .mvpp()
        .roots()
        .iter()
        .find(|(n, _, _)| n == "H")
        .expect("H root");
    let merged = design.mvpp.mvpp().node(*root).expr();
    let a = execute(&q1, &db).expect("direct").canonicalized();
    let b = execute(merged, &db).expect("merged").canonicalized();
    assert_eq!(a.rows(), b.rows());
}

#[test]
fn nested_aggregate_under_join_is_preserved_by_merge() {
    // A hand-built plan the SPJ merge machinery cannot restructure: join a
    // per-store aggregate back to the Stores dimension. The generator must
    // fall back to inserting it verbatim.
    let c = catalog();
    let per_store = Expr::aggregate(
        Expr::base("Sales"),
        [AttrRef::new("Sales", "store")],
        [AggExpr::new(
            AggFunc::Sum,
            AttrRef::new("Sales", "amount"),
            "total",
        )],
    );
    let joined = Expr::join(
        per_store,
        Expr::base("Stores"),
        mvdesign::algebra::JoinCondition::on(
            AttrRef::new("Sales", "store"),
            AttrRef::new("Stores", "store"),
        ),
    );
    let plain = parse_query_with(
        "SELECT city, amount FROM Sales, Stores WHERE Sales.store = Stores.store",
        &c,
    )
    .expect("parses");
    let w = Workload::new([
        Query::new("nested", 3.0, joined.clone()),
        Query::new("plain", 1.0, plain),
    ])
    .expect("valid");
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    let mvpp = &generate_mvpps(
        &w,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )[0];
    let db = tiny_db();
    for (name, _, root) in mvpp.roots() {
        let original = w.query(name).expect("known");
        let a = execute(original.root(), &db)
            .expect("direct")
            .canonicalized();
        let b = execute(mvpp.node(*root).expr(), &db)
            .expect("merged")
            .canonicalized();
        assert_eq!(a.rows(), b.rows(), "merge changed {name}");
    }
}
