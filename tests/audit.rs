//! The correctness-audit suite.
//!
//! Property tests drive the structural validator, the three-way differential
//! cost oracle and the greedy-trace replay over hundreds of randomly
//! generated star-schema workloads; a named regression corpus under
//! `tests/corpus/` pins one scenario per previously fixed bug
//! (NaN-weight sort panics, zero-block catalog stats, the distributed
//! SharedRecompute maintenance formula).

use proptest::prelude::*;

use mvdesign::catalog::CatalogError;
use mvdesign::core::{audit_annotated, check_greedy_trace, validate_mvpp, validate_schemas};
use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, ExhaustiveSelection, GenerateConfig, GeneticSelection,
    GreedySelection, MaintenanceMode, MaintenancePolicy, MaterializeAll, MaterializeNone,
    RandomSearch, SelectionAlgorithm, SimulatedAnnealing, UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::optimizer::Planner;
use mvdesign::workload::{
    degenerate_scenarios, parse_scenario, DslError, Scenario, StarSchema, StarSchemaConfig,
};
use mvdesign_verify::{
    audit_scenario, check_distributed_zero_link, check_prune_safety, standard_choices, AuditConfig,
};

fn corpus(name: &str) -> String {
    let path = format!("{}/../../tests/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn annotate(
    scenario: &Scenario,
    policy: MaintenancePolicy,
) -> (AnnotatedMvpp, CostEstimator<'_, PaperCostModel>) {
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let mvpp = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )
    .remove(0);
    (
        AnnotatedMvpp::annotate_with(mvpp, &est, UpdateWeighting::Max, policy),
        est,
    )
}

const POLICIES: [MaintenancePolicy; 2] = [
    MaintenancePolicy::Recompute,
    MaintenancePolicy::Incremental {
        update_fraction: 0.25,
    },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every oracle, on a random star-schema workload, under both
    /// maintenance policies: MVPP structural invariants, per-node schemas,
    /// the bit-exact three-way cost differential (`evaluate` ≡
    /// `evaluate_set` ≡ `IncrementalEvaluator`), the greedy trace replay
    /// with its same-branch pruning invariant, the bounded-loss prune
    /// tripwire, and the distributed evaluator at zero link cost.
    #[test]
    fn random_star_workloads_audit_clean(
        seed in 0u64..10_000,
        dimensions in 2usize..5,
        queries in 3usize..7,
        aggregate_probability in 0.0f64..0.4,
    ) {
        let scenario = StarSchema::with_config(StarSchemaConfig {
            seed,
            dimensions,
            queries,
            aggregate_probability,
            ..StarSchemaConfig::default()
        })
        .scenario();
        for policy in POLICIES {
            let (a, _est) = annotate(&scenario, policy);
            let report = audit_annotated(&a, &scenario.catalog);
            prop_assert!(report.is_clean(), "{policy:?} audit: {report}");
            let report = check_prune_safety(&a);
            prop_assert!(report.is_clean(), "{policy:?} prune: {report}");
            let choices = standard_choices(&a, seed, 4);
            let report = check_distributed_zero_link(&a, &choices);
            prop_assert!(report.is_clean(), "{policy:?} distributed: {report}");
        }
    }
}

/// The structural validator and greedy replay hold on every degenerate
/// scenario (empty relations, zero frequencies, duplicated subexpressions).
#[test]
fn degenerate_scenarios_audit_clean() {
    for case in degenerate_scenarios() {
        for policy in POLICIES {
            let (a, _est) = annotate(&case.scenario, policy);
            let report = audit_annotated(&a, &case.scenario.catalog);
            assert!(report.is_clean(), "{}/{policy:?}: {report}", case.name);
            let report = check_greedy_trace(&a);
            assert!(report.is_clean(), "{}/{policy:?}: {report}", case.name);
        }
    }
}

/// Regression (NaN weight sorts): the corpus relations are large enough
/// that join cost estimates overflow f64 to infinity, so the node weight
/// `fq·Ca − fu·Cm` comes out `∞ − ∞ = NaN` — from perfectly valid, finite
/// catalog statistics. The weight/fitness sorts used
/// `partial_cmp(..).expect(..)` and panicked; they now use `total_cmp`, so
/// every selection algorithm must run to completion (the selected cost may
/// legitimately be non-finite — the point is termination, not optimality).
/// `max_nodes: 1` forces the exhaustive search down its weight-ranked
/// candidate-truncation path, where the panic lived.
#[test]
fn corpus_nan_weight_sort_runs_every_algorithm() {
    let scenario = parse_scenario(&corpus("nan-weight-sort.dsl")).expect("corpus parses");
    let (a, _est) = annotate(&scenario, MaintenancePolicy::Recompute);
    assert!(
        a.mvpp()
            .nodes()
            .iter()
            .any(|n| a.annotation(n.id()).weight.is_nan()),
        "corpus must actually produce a NaN weight, or this test proves nothing"
    );
    let truncating = ExhaustiveSelection {
        max_nodes: 1,
        parallelism: 1,
    };
    let algorithms: [&dyn SelectionAlgorithm; 8] = [
        &GreedySelection::new(),
        &MaterializeAll,
        &MaterializeNone,
        &ExhaustiveSelection::default(),
        &truncating,
        &RandomSearch::default(),
        &SimulatedAnnealing::default(),
        &GeneticSelection::default(),
    ];
    for algo in algorithms {
        let m = algo.select(&a, MaintenanceMode::SharedRecompute);
        // Termination and a well-formed selection are the contract; the cost
        // itself overflows by design.
        let _ = evaluate(&a, &m, MaintenanceMode::SharedRecompute).total;
    }
    let report = validate_mvpp(a.mvpp());
    assert!(report.is_clean(), "{report}");
}

/// Regression (zero-block stats): a populated relation claiming zero blocks
/// used to slip through the catalog builder and surface as NaN/∞ deep inside
/// selection. The builder now rejects it, so parsing the corpus file fails
/// with an error naming the block count.
#[test]
fn corpus_zero_blocks_relation_is_rejected() {
    let err = parse_scenario(&corpus("zero-blocks-relation.dsl"))
        .expect_err("zero blocks for 100 records must not validate");
    match err {
        DslError::Catalog { source, .. } => assert!(
            matches!(
                source,
                CatalogError::InvalidValue {
                    what: "block count (zero blocks for a populated relation)",
                    ..
                }
            ),
            "unexpected catalog error: {source}"
        ),
        other => panic!("expected a catalog validation error, got: {other}"),
    }
}

/// Regression (distributed SharedRecompute): the distributed evaluator
/// billed full recomputation and dropped the incremental delta-apply term,
/// so under `MaintenancePolicy::Incremental` it disagreed with the core
/// evaluator even at zero link cost. It must now be bit-exact for every
/// materialization choice under both policies.
#[test]
fn corpus_distributed_shared_recompute_bit_exact() {
    let scenario =
        parse_scenario(&corpus("distributed-shared-recompute.dsl")).expect("corpus parses");
    for policy in POLICIES {
        let (a, _est) = annotate(&scenario, policy);
        let choices = standard_choices(&a, 0xD15C, 8);
        let report = check_distributed_zero_link(&a, &choices);
        assert!(report.is_clean(), "{policy:?}: {report}");
    }
}

/// The full audit battery also accepts the corpus scenarios with honest
/// statistics, including the executable semantics oracle on generated data.
/// (`nan-weight-sort.dsl` is excluded: its joint-size override is poisoned
/// by design, so its costs are not meaningful to audit.)
#[test]
fn corpus_scenarios_pass_full_audit() {
    let config = AuditConfig::default();
    let name = "distributed-shared-recompute.dsl";
    let scenario = parse_scenario(&corpus(name)).expect("corpus parses");
    let report = audit_scenario(&scenario, &config);
    assert!(report.is_clean(), "{name}: {report}");
}

/// The oracles must catch bugs, not just bless healthy designs: dropping a
/// conjunct during a "rewrite" is flagged, and the structural validator
/// still accepts the honest design end-to-end.
#[test]
fn rewrite_oracle_detects_dropped_predicate() {
    use mvdesign::algebra::{AttrRef, CompareOp, Expr, Predicate};
    use mvdesign::core::check_query_rewrite;

    let scenario = parse_scenario(&corpus("nan-weight-sort.dsl")).expect("corpus parses");
    let original = scenario
        .workload
        .query("hot")
        .expect("hot exists")
        .root()
        .clone();
    // A "rewrite" that forgets the `val > 3` filter.
    let dishonest = Expr::select(
        Expr::join(
            Expr::base("Archive"),
            Expr::base("Live"),
            mvdesign::algebra::JoinCondition::on(
                AttrRef::new("Archive", "id"),
                AttrRef::new("Live", "id"),
            ),
        ),
        Predicate::cmp(AttrRef::new("Live", "val"), CompareOp::Gt, 4),
    );
    let report = check_query_rewrite(&original, &dishonest, &scenario.catalog);
    assert!(!report.is_clean(), "changed predicate must be flagged");

    let (a, _est) = annotate(&scenario, MaintenancePolicy::Recompute);
    let report = validate_mvpp(a.mvpp());
    assert!(report.is_clean(), "{report}");
    let report = validate_schemas(a.mvpp(), &scenario.catalog);
    assert!(report.is_clean(), "{report}");
}
