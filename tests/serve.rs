//! Serving-layer battery: random interleavings of concurrent reader
//! clients × appends × refreshes through `mvdesign-serve` must produce
//! answers **bag-equal to a sequential `Warehouse` replay** of the same
//! event schedule. The writer's publish version is the linearization
//! point: every answer carries the version it was served at, every applied
//! write carries the version it produced, so the concurrent history
//! collapses to "apply writes in version order, answer each query at its
//! version" — which is exactly what the replay executes, single-threaded.
//!
//! The battery runs every schedule twice: on a fully resident warehouse
//! and on a `with_mem_budget` one (tables paged into a shared buffer pool,
//! operators spilling), both replayed against a *resident* sequential
//! warehouse — so snapshot isolation is exercised across concurrent page
//! eviction too. `MVDESIGN_MEM_BUDGET` overrides the budget (the CI
//! low-memory job pins it to 256 bytes).
//!
//! Deterministic companions pin what the proptests rely on: a
//! snapshot-stability fixture (a reader holding a snapshot across a
//! published refresh sees the old, internally consistent state
//! end-to-end), a drain-on-shutdown check, and a 64-client × 500 ms mixed
//! query/maintenance smoke.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use mvdesign::algebra::{parse_query_with, Expr, Value};
use mvdesign::catalog::Catalog;
use mvdesign::core::DesignResult;
use mvdesign::engine::{execute, Database, Generator, GeneratorConfig};
use mvdesign::prelude::Designer;
use mvdesign::warehouse::{Warehouse, WarehouseSnapshot};
use mvdesign::workload::paper_example;
use mvdesign_serve::{ServeConfig, Server};

// The compile-time thread-safety contract the serving layer rests on: a
// future non-`Send`/`Sync` field in any of these breaks this test file at
// compile time, in the PR that introduces it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WarehouseSnapshot>();
    assert_send_sync::<Database>();
    assert_send_sync::<mvdesign::engine::Table>();
    assert_send_sync::<mvdesign::engine::BufferPool>();
    assert_send_sync::<Catalog>();
    assert_send_sync::<mvdesign::core::ViewCatalog>();
};

/// The design is deterministic; compute it once for every case.
fn fixture() -> &'static (Catalog, DesignResult) {
    static FIXTURE: OnceLock<(Catalog, DesignResult)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = paper_example();
        let design = Designer::new()
            .design(&scenario.catalog, &scenario.workload)
            .expect("paper example designs");
        (scenario.catalog, design)
    })
}

fn base_db(seed: u64) -> Database {
    let (catalog, _) = fixture();
    Generator::with_config(GeneratorConfig {
        seed,
        scale: 0.003,
        max_rows: 250,
    })
    .database(catalog)
}

/// The paged-variant pool budget: tiny enough to force eviction on this
/// data; the CI low-memory job overrides it down to 256 bytes.
fn mem_budget() -> usize {
    std::env::var("MVDESIGN_MEM_BUDGET")
        .ok()
        .map(|v| v.parse().expect("MVDESIGN_MEM_BUDGET is a byte count"))
        .unwrap_or(4096)
}

/// The queries clients draw from: the four workload queries (view-routed)
/// plus ad hoc scans the design never saw.
fn query_pool() -> &'static Vec<Arc<Expr>> {
    static POOL: OnceLock<Vec<Arc<Expr>>> = OnceLock::new();
    POOL.get_or_init(|| {
        let (catalog, _) = fixture();
        let scenario = paper_example();
        let mut pool: Vec<Arc<Expr>> = scenario
            .workload
            .queries()
            .iter()
            .map(|q| Arc::clone(q.root()))
            .collect();
        for sql in [
            "SELECT name FROM Customer",
            "SELECT name FROM Customer WHERE city = 'v0'",
        ] {
            pool.push(parse_query_with(sql, catalog).expect("ad hoc SQL parses"));
        }
        pool
    })
}

/// One client-visible event.
#[derive(Debug, Clone, Copy)]
enum Op {
    Query(usize),
    Append { rel: usize, rows: usize },
    Refresh,
}

/// Decodes a proptest-sampled `(kind, arg)` pair: ~60% queries, ~25%
/// appends, ~15% refreshes.
fn decode(kind: usize, arg: usize, pool: usize, rels: usize) -> Op {
    if kind < 60 {
        Op::Query(arg % pool)
    } else if kind < 85 {
        Op::Append {
            rel: arg % rels,
            rows: 1 + kind % 3,
        }
    } else {
        Op::Refresh
    }
}

/// A served query, tagged with its linearization point.
#[derive(Debug)]
struct QueryRec {
    version: u64,
    pool: usize,
    rows: Vec<Vec<Value>>,
}

/// An applied write, tagged with the version it produced.
#[derive(Debug)]
enum WriteRec {
    Append {
        version: u64,
        rel: String,
        rows: Vec<Vec<Value>>,
    },
    Refresh {
        version: u64,
    },
}

impl WriteRec {
    fn version(&self) -> u64 {
        match self {
            WriteRec::Append { version, .. } | WriteRec::Refresh { version } => *version,
        }
    }
}

/// Drives every client script against a live server (one OS thread per
/// client, so cross-client interleaving is scheduler-random), then shuts
/// the server down and returns the tagged history.
fn run_serve(
    warehouse: Warehouse,
    scripts: &[Vec<Op>],
    readers: usize,
    seed: u64,
) -> (Vec<QueryRec>, Vec<WriteRec>) {
    let pool = query_pool();
    let rel_names: Vec<String> = base_db(seed).iter().map(|(n, _)| n.to_string()).collect();
    let twin = base_db(seed ^ 0xA99E);
    let twin_rows: Vec<Vec<Vec<Value>>> = rel_names
        .iter()
        .map(|n| twin.table(n).expect("twin relation").rows().to_vec())
        .collect();
    let server = Server::start(warehouse, ServeConfig { readers });
    let per_client: Vec<(Vec<QueryRec>, Vec<WriteRec>)> = std::thread::scope(|s| {
        let handles: Vec<_> = scripts
            .iter()
            .enumerate()
            .map(|(ci, script)| {
                let h = server.handle();
                let (rel_names, twin_rows) = (&rel_names, &twin_rows);
                s.spawn(move || {
                    let mut queries = Vec::new();
                    let mut writes = Vec::new();
                    for (oi, op) in script.iter().enumerate() {
                        match *op {
                            Op::Query(p) => {
                                let a = h.query_expr(&pool[p]).wait().expect("query answers");
                                queries.push(QueryRec {
                                    version: a.version,
                                    pool: p,
                                    rows: a.table.canonicalized().into_rows(),
                                });
                            }
                            Op::Append { rel, rows } => {
                                let src = &twin_rows[rel];
                                let start =
                                    (ci * 13 + oi * 7) % src.len().saturating_sub(rows).max(1);
                                let batch = src[start..(start + rows).min(src.len())].to_vec();
                                let applied = h
                                    .append(rel_names[rel].clone(), batch.clone())
                                    .wait()
                                    .expect("append applies");
                                writes.push(WriteRec::Append {
                                    version: applied.version,
                                    rel: rel_names[rel].clone(),
                                    rows: batch,
                                });
                            }
                            Op::Refresh => {
                                let applied = h.refresh().wait().expect("refresh applies");
                                writes.push(WriteRec::Refresh {
                                    version: applied.version,
                                });
                            }
                        }
                    }
                    (queries, writes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    drop(server.shutdown());
    let mut queries = Vec::new();
    let mut writes = Vec::new();
    for (q, w) in per_client {
        queries.extend(q);
        writes.extend(w);
    }
    (queries, writes)
}

/// Replays the writes in version order on a sequential warehouse,
/// answering every query at its recorded version, and asserts bag
/// equality with the concurrently served answers.
fn replay_and_assert(
    mut reference: Warehouse,
    queries: Vec<QueryRec>,
    mut writes: Vec<WriteRec>,
    label: &str,
) {
    let pool = query_pool();
    writes.sort_by_key(WriteRec::version);
    for (i, w) in writes.iter().enumerate() {
        assert_eq!(
            w.version(),
            i as u64 + 1,
            "{label}: publish versions must be contiguous"
        );
    }
    let mut by_version: BTreeMap<u64, Vec<QueryRec>> = BTreeMap::new();
    for q in queries {
        by_version.entry(q.version).or_default().push(q);
    }
    let max_version = writes.len() as u64;
    let answer_at = |reference: &Warehouse, version: u64, recs: &[QueryRec]| {
        for rec in recs {
            let want = reference
                .query_expr(&pool[rec.pool])
                .expect("replay answers")
                .canonicalized()
                .into_rows();
            assert_eq!(
                rec.rows, want,
                "{label}: query pool[{}] served at version {version} diverges from the \
                 sequential replay",
                rec.pool
            );
        }
    };
    for (version, recs) in &by_version {
        assert!(
            *version <= max_version,
            "{label}: answer tagged with unpublished version {version}"
        );
        assert_eq!(*version, recs.first().expect("non-empty group").version);
    }
    if let Some(recs) = by_version.get(&0) {
        answer_at(&reference, 0, recs);
    }
    for w in &writes {
        match w {
            WriteRec::Append { rel, rows, .. } => reference
                .append(rel.clone(), rows.clone())
                .expect("replay append applies"),
            WriteRec::Refresh { .. } => {
                reference.refresh().expect("replay refresh applies");
            }
        }
        if let Some(recs) = by_version.get(&w.version()) {
            answer_at(&reference, w.version(), recs);
        }
    }
}

fn resident_warehouse(seed: u64) -> Warehouse {
    let (catalog, design) = fixture();
    Warehouse::new(catalog.clone(), base_db(seed), design).expect("warehouse builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tentpole invariant: concurrent serve ≡ sequential replay, resident
    /// and under a memory budget (paged tables, spilling operators,
    /// concurrent eviction), for random clients × ops × interleavings.
    #[test]
    fn concurrent_serve_equals_sequential_replay(
        seed in 0u64..50,
        raw in proptest::collection::vec(
            proptest::collection::vec((0usize..100, 0usize..8), 2..7), 2..5),
    ) {
        let pool = query_pool().len();
        let rels = base_db(seed).len();
        let scripts: Vec<Vec<Op>> = raw
            .iter()
            .map(|ops| ops.iter().map(|&(k, a)| decode(k, a, pool, rels)).collect())
            .collect();

        let (queries, writes) = run_serve(resident_warehouse(seed), &scripts, 3, seed);
        replay_and_assert(resident_warehouse(seed), queries, writes, "resident");

        let budgeted = resident_warehouse(seed).with_mem_budget(Some(mem_budget()));
        let (queries, writes) = run_serve(budgeted, &scripts, 3, seed);
        replay_and_assert(resident_warehouse(seed), queries, writes, "mem-budget");
    }
}

/// A reader holding a snapshot across a published refresh sees the old,
/// internally consistent state end-to-end: every answer it produces is
/// bit-identical to its pre-refresh answers, and its stored views still
/// match a recompute of their definitions over its own base tables.
#[test]
fn held_snapshot_is_stable_across_published_refresh() {
    let seed = 7;
    let server = Server::start(resident_warehouse(seed), ServeConfig { readers: 2 });
    let h = server.handle();
    let held = h.snapshot();
    assert_eq!(held.version(), 0);

    let pool = query_pool();
    let before: Vec<Vec<Vec<Value>>> = pool
        .iter()
        .map(|q| {
            held.query_expr(q)
                .expect("held snapshot answers")
                .canonicalized()
                .into_rows()
        })
        .collect();
    let customer_rows = held
        .database()
        .table("Customer")
        .expect("customer exists")
        .len();

    // A write burst: append to every view's input, then refresh — the
    // writer publishes two new snapshots while `held` stays pinned.
    let twin = base_db(seed ^ 0xA99E);
    let batch = twin.table("Customer").expect("twin").rows()[..3].to_vec();
    h.append("Customer", batch).wait().expect("append applies");
    let applied = h.refresh().wait().expect("refresh applies");
    assert_eq!(applied.version, 2);
    assert_eq!(h.snapshot().version(), 2, "publish chain advanced");

    // End-to-end stability of the held snapshot: same answers…
    for (q, want) in pool.iter().zip(&before) {
        let got = held
            .query_expr(q)
            .expect("held snapshot still answers")
            .canonicalized()
            .into_rows();
        assert_eq!(&got, want, "held snapshot changed an answer");
    }
    // …same base tables…
    assert_eq!(
        held.database()
            .table("Customer")
            .expect("customer exists")
            .len(),
        customer_rows,
        "held snapshot saw the append"
    );
    // …and internally consistent views: each stored view still equals a
    // recompute of its definition over the held snapshot's own base data.
    for (name, definition) in held.views().views() {
        let stored = held
            .database()
            .table(name.as_str())
            .expect("view stored")
            .canonicalized();
        let recomputed = execute(definition, held.database())
            .expect("view recomputes")
            .canonicalized();
        assert_eq!(
            stored.rows(),
            recomputed.rows(),
            "held snapshot view {name} is not internally consistent"
        );
    }

    // The new snapshot, meanwhile, reflects the applied maintenance.
    assert_eq!(
        h.snapshot()
            .database()
            .table("Customer")
            .expect("customer exists")
            .len(),
        customer_rows + 3
    );
    drop(server.shutdown());
}

/// Shutdown drains: every query accepted before shutdown is answered, even
/// with a single reader and a deep queue.
#[test]
fn shutdown_drains_every_accepted_query() {
    let server = Server::start(resident_warehouse(11), ServeConfig { readers: 1 });
    let h = server.handle();
    let pool = query_pool();
    let tickets: Vec<_> = (0..64)
        .map(|i| h.query_expr(&pool[i % pool.len()]))
        .collect();
    let warehouse = server.shutdown();
    assert!(!warehouse.is_stale());
    for (i, t) in tickets.into_iter().enumerate() {
        let a = t
            .wait()
            .unwrap_or_else(|e| panic!("query {i} dropped at shutdown: {e}"));
        assert_eq!(a.version, 0);
    }
}

/// The CI smoke: 64 simulated clients over a mixed query/maintenance load
/// for 500 ms — no assertion on throughput, only that every request
/// completes and the accounting adds up.
#[test]
fn smoke_64_clients_mixed_load() {
    let seed = 3;
    let server = Server::start(resident_warehouse(seed), ServeConfig { readers: 0 });
    let pool = query_pool();
    let twin = base_db(seed ^ 0xA99E);
    let customer: Vec<Vec<Value>> = twin.table("Customer").expect("twin").rows().to_vec();
    let deadline = Instant::now() + Duration::from_millis(500);
    const DRIVERS: usize = 4;
    const SESSIONS_PER_DRIVER: usize = 16;
    let served: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..DRIVERS)
            .map(|d| {
                let h = server.handle();
                let customer = &customer;
                s.spawn(move || {
                    let mut answered = 0u64;
                    let mut tick = 0usize;
                    while Instant::now() < deadline {
                        let tickets: Vec<_> = (0..SESSIONS_PER_DRIVER)
                            .map(|session| {
                                tick += 1;
                                let roll = (d * 31 + session * 7 + tick * 13) % 100;
                                if roll < 90 {
                                    Some(h.query_expr(&pool[roll % pool.len()]))
                                } else if roll < 97 {
                                    let at = (tick * 3) % customer.len().saturating_sub(2).max(1);
                                    drop(h.append("Customer", customer[at..at + 2].to_vec()));
                                    None
                                } else {
                                    drop(h.refresh());
                                    None
                                }
                            })
                            .collect();
                        for t in tickets.into_iter().flatten() {
                            t.wait().expect("smoke query answers");
                            answered += 1;
                        }
                    }
                    answered
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver")).sum()
    });
    let stats = server.handle().stats();
    let warehouse = server.shutdown();
    assert!(served > 0, "smoke served no queries");
    assert!(stats.queries >= served);
    assert_eq!(
        stats.snapshots_published,
        stats.appends + stats.refreshes,
        "every applied write publishes exactly one snapshot"
    );
    assert_eq!(stats.latency.count, stats.queries);
    assert!(stats.latency.max_us > 0.0);
    // The recovered warehouse still answers every pool query after the
    // concurrent session (a final refresh folds any tail appends).
    let mut warehouse = warehouse;
    warehouse.refresh().expect("final refresh");
    for q in pool {
        warehouse
            .query_expr(q)
            .expect("recovered warehouse answers");
    }
}
