//! Differential battery for morsel-driven parallel execution: on random
//! SPJ + aggregate plans, every join algorithm, int/text/dict join keys,
//! morsel sizes {1, 7, 64, 4096} and thread counts {1, 2, 4}, the parallel
//! engine must produce tables **bit-identical** to the single-threaded
//! kernels — same column representation, same row order, not merely the
//! same bag. The I/O simulator's report must be equally invariant.
//!
//! CI exercises the merge logic even on single-core runners by re-running
//! the battery with the `MVDESIGN_MORSEL_THREADS` env knob (set to `1` and
//! to `0` = all cores), which overrides the sampled thread count.

use std::sync::Arc;

use proptest::prelude::*;

use mvdesign::algebra::{
    AggExpr, AggFunc, AttrRef, CompareOp, Expr, JoinCondition, Predicate, Value,
};
use mvdesign::catalog::{AttrType, Catalog};
use mvdesign::engine::{
    execute_with, execute_with_context, measure, measure_with, selection_mask, selection_mask_with,
    Database, ExecContext, Generator, GeneratorConfig, JoinAlgo, Table,
};

/// A three-relation catalog with an integer join key, an integer payload and
/// a low-cardinality text attribute per relation.
fn make_catalog(sizes: [u32; 3]) -> Catalog {
    let mut c = Catalog::new();
    for (i, name) in ["R0", "R1", "R2"].iter().enumerate() {
        c.relation(*name)
            .attr("k", AttrType::Int)
            .attr("x", AttrType::Int)
            .attr("t", AttrType::Text)
            .records(f64::from(sizes[i].max(4)))
            .blocks((f64::from(sizes[i].max(4)) / 10.0).ceil())
            .update_frequency(1.0)
            .selectivity("x", 0.3)
            .selectivity("t", 0.3)
            .finish()
            .expect("generated relation is valid");
    }
    c
}

/// The shape of one random query: a chain join (on the integer or the text
/// key), integer and text selections with varying comparison operators
/// (text predicates optionally as one disjunction), and either a projection
/// or a group-by-with-aggregates on top.
#[derive(Debug, Clone)]
struct QuerySpec {
    joins: usize,                          // 0..=2 extra relations
    join_on_text: bool,                    // join on `t` instead of `k`
    select_on: Vec<(usize, usize, i64)>,   // (relation, op index, literal)
    text_select: Vec<(usize, usize, i64)>, // (relation, op index, "v{lit}")
    text_or: bool,                         // OR the text predicates together
    top: usize,                            // 0 = nothing, 1 = project, 2 = aggregate
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (
        0usize..=2,
        any::<bool>(),
        proptest::collection::vec((0usize..3, 0usize..3, 0i64..6), 0..3),
        proptest::collection::vec((0usize..3, 0usize..3, 0i64..6), 0..3),
        any::<bool>(),
        0usize..3,
    )
        .prop_map(
            |(joins, join_on_text, select_on, text_select, text_or, top)| QuerySpec {
                joins,
                join_on_text,
                select_on,
                text_select,
                text_or,
                top,
            },
        )
}

fn build_query(spec: &QuerySpec) -> Arc<Expr> {
    let key = if spec.join_on_text { "t" } else { "k" };
    let mut expr = Expr::base("R0");
    for i in 1..=spec.joins {
        let prev = format!("R{}", i - 1);
        let cur = format!("R{i}");
        expr = Expr::join(
            expr,
            Expr::base(cur.as_str()),
            JoinCondition::on(AttrRef::new(prev, key), AttrRef::new(cur, key)),
        );
    }
    let ops = [CompareOp::Le, CompareOp::Eq, CompareOp::Gt];
    let mut preds = Vec::new();
    for (rel, op, lit) in &spec.select_on {
        if *rel <= spec.joins {
            preds.push(Predicate::cmp(
                AttrRef::new(format!("R{rel}"), "x"),
                ops[*op],
                *lit,
            ));
        }
    }
    let mut text_preds = Vec::new();
    for (rel, op, lit) in &spec.text_select {
        if *rel <= spec.joins {
            text_preds.push(Predicate::cmp(
                AttrRef::new(format!("R{rel}"), "t"),
                ops[*op],
                Value::text(format!("v{lit}")),
            ));
        }
    }
    if spec.text_or && text_preds.len() >= 2 {
        preds.push(Predicate::or(text_preds));
    } else {
        preds.extend(text_preds);
    }
    expr = Expr::select(expr, Predicate::and(preds));
    match spec.top {
        1 => {
            let mut attrs = vec![AttrRef::new("R0", "t")];
            if spec.joins >= 1 {
                attrs.push(AttrRef::new("R1", "x"));
            }
            Expr::project(expr, attrs)
        }
        2 => Expr::aggregate(
            expr,
            [AttrRef::new("R0", "t")],
            [
                AggExpr::new(AggFunc::Sum, AttrRef::new("R0", "x"), "sx"),
                AggExpr::new(AggFunc::Min, AttrRef::new("R0", "k"), "mk"),
                AggExpr::count_star("n"),
            ],
        ),
        _ => expr,
    }
}

/// A generated database: every text column arrives dictionary-encoded, so
/// text-keyed plans exercise the dict code paths.
fn dict_db(catalog: &Catalog, seed: u64) -> Database {
    Generator::with_config(GeneratorConfig {
        seed,
        scale: 1.0,
        max_rows: 60,
    })
    .database(catalog)
}

/// The same data rebuilt through the row-major constructor, which stores
/// text as plain `Text` columns — so the identical plans also exercise the
/// non-dictionary (plain text / `Vec<Value>` key) kernels.
fn plain_text_db(db: &Database) -> Database {
    let mut plain = Database::new();
    for (name, t) in db.iter() {
        plain.insert_table(Table::new(
            name.clone(),
            t.attrs().to_vec(),
            t.rows().to_vec(),
        ));
    }
    plain
}

/// The thread count the battery runs at: the sampled value, unless the
/// `MVDESIGN_MORSEL_THREADS` env knob overrides it (CI sets `1` and `0` =
/// all cores so single-core runners still exercise the merge logic).
fn effective_threads(sampled: usize) -> usize {
    match std::env::var("MVDESIGN_MORSEL_THREADS") {
        Ok(v) => v.parse().expect("MVDESIGN_MORSEL_THREADS is a number"),
        Err(_) => sampled,
    }
}

/// The operator memory budget the battery runs at: unlimited, unless the
/// `MVDESIGN_MEM_BUDGET` env knob sets one (CI's low-memory job sets a few
/// hundred bytes, forcing the Grace hash-join and spilling-aggregation
/// paths under every context — results must not move).
fn env_mem_budget() -> Option<usize> {
    std::env::var("MVDESIGN_MEM_BUDGET")
        .ok()
        .map(|v| v.parse().expect("MVDESIGN_MEM_BUDGET is a byte count"))
}

const MORSEL_SIZES: [usize; 4] = [1, 7, 64, 4096];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole invariant: for random plans × join algorithms × key
    /// encodings × morsel sizes × thread counts, the morsel engine's output
    /// table equals the single-threaded engine's **bit for bit**.
    #[test]
    fn morsel_engine_is_bit_identical_to_single_threaded(
        spec in query_strategy(),
        sizes in proptest::array::uniform3(8u32..150),
        seed in 0u64..1_000,
        morsel_sel in 0usize..MORSEL_SIZES.len(),
        threads_sel in 0usize..THREAD_COUNTS.len(),
        plain_text in any::<bool>(),
    ) {
        let catalog = make_catalog(sizes);
        let generated = dict_db(&catalog, seed);
        let db = if plain_text { plain_text_db(&generated) } else { generated };
        let q = build_query(&spec);
        let ctx = ExecContext {
            threads: effective_threads(THREAD_COUNTS[threads_sel]),
            morsel_rows: MORSEL_SIZES[morsel_sel],
            mem_budget: env_mem_budget(),
        };
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let sequential = execute_with(&q, &db, algo).expect("single-threaded executes");
            let parallel = execute_with_context(&q, &db, algo, &ctx)
                .expect("morsel engine executes");
            prop_assert_eq!(
                sequential.batch(),
                parallel.batch(),
                "bit-identity broken under {:?} with {:?} for {:?}",
                algo,
                ctx,
                spec
            );
        }
    }

    /// Parallel selection masks equal the adaptive single-threaded mask on
    /// every morsel size — including morsel_rows = 1 and 7, which put a
    /// morsel boundary inside every run of surviving rows.
    #[test]
    fn parallel_masks_are_bit_identical(
        sizes in proptest::array::uniform3(64u32..600, ),
        seed in 0u64..1_000,
        int_preds in proptest::collection::vec((0usize..3, 0i64..6), 0..4),
        text_preds in proptest::collection::vec((0usize..3, 0i64..6), 0..4),
        use_or in any::<bool>(),
        morsel_sel in 0usize..MORSEL_SIZES.len(),
        threads_sel in 0usize..THREAD_COUNTS.len(),
    ) {
        let catalog = make_catalog(sizes);
        let db = Generator::with_config(GeneratorConfig {
            seed,
            scale: 1.0,
            max_rows: 600,
        })
        .database(&catalog);
        let ops = [CompareOp::Le, CompareOp::Eq, CompareOp::Gt];
        let mut preds: Vec<Predicate> = int_preds
            .iter()
            .map(|(op, lit)| Predicate::cmp(AttrRef::new("R0", "x"), ops[*op], *lit))
            .collect();
        let texts: Vec<Predicate> = text_preds
            .iter()
            .map(|(op, lit)| {
                Predicate::cmp(AttrRef::new("R0", "t"), ops[*op], Value::text(format!("v{lit}")))
            })
            .collect();
        if use_or && texts.len() >= 2 {
            preds.push(Predicate::or(texts));
        } else {
            preds.extend(texts);
        }
        let p = Predicate::and(preds);
        let batch = db.table("R0").expect("table generated").batch();
        let ctx = ExecContext {
            threads: effective_threads(THREAD_COUNTS[threads_sel]),
            morsel_rows: MORSEL_SIZES[morsel_sel],
            mem_budget: env_mem_budget(),
        };
        let sequential = selection_mask(&p, batch).expect("mask evaluates");
        let parallel = selection_mask_with(&p, batch, &ctx).expect("parallel mask evaluates");
        prop_assert_eq!(sequential, parallel);
    }

    /// The I/O simulator charges per logical batch, so its report (and its
    /// result table) is invariant under any execution context.
    #[test]
    fn iosim_reports_are_context_invariant(
        spec in query_strategy(),
        sizes in proptest::array::uniform3(8u32..100),
        seed in 0u64..500,
        bf in 1u32..40,
        morsel_sel in 0usize..MORSEL_SIZES.len(),
        threads_sel in 0usize..THREAD_COUNTS.len(),
    ) {
        let catalog = make_catalog(sizes);
        let db = dict_db(&catalog, seed);
        let q = build_query(&spec);
        let ctx = ExecContext {
            threads: effective_threads(THREAD_COUNTS[threads_sel]),
            morsel_rows: MORSEL_SIZES[morsel_sel],
            mem_budget: env_mem_budget(),
        };
        let (base_table, base_io) = measure(&q, &db, f64::from(bf)).expect("iosim executes");
        let (table, io) = measure_with(&q, &db, f64::from(bf), &ctx)
            .expect("parallel iosim executes");
        prop_assert_eq!(base_io, io);
        prop_assert_eq!(base_table.batch(), table.batch());
    }
}

/// A deterministic fixture where join matches and duplicate groups straddle
/// every morsel boundary: 1,000 left rows over 11 keys joined against 121
/// right rows, aggregated over two group columns, at morsel sizes that do
/// not divide the row count.
#[test]
fn morsel_boundaries_do_not_reorder_output() {
    let mut db = Database::new();
    db.insert_table(Table::new(
        "L",
        [
            AttrRef::new("L", "id"),
            AttrRef::new("L", "k"),
            AttrRef::new("L", "g"),
        ],
        (0..1_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 11), Value::Int(i % 4)])
            .collect(),
    ));
    db.insert_table(Table::new(
        "R",
        [AttrRef::new("R", "k")],
        (0..121).map(|j| vec![Value::Int(j % 11)]).collect(),
    ));
    let q = Expr::aggregate(
        Expr::join(
            Expr::base("L"),
            Expr::base("R"),
            JoinCondition::on(AttrRef::new("L", "k"), AttrRef::new("R", "k")),
        ),
        [AttrRef::new("L", "g")],
        [
            AggExpr::new(AggFunc::Sum, AttrRef::new("L", "id"), "total"),
            AggExpr::new(AggFunc::Min, AttrRef::new("L", "id"), "lo"),
            AggExpr::new(AggFunc::Max, AttrRef::new("L", "id"), "hi"),
            AggExpr::count_star("n"),
        ],
    );
    for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
        let sequential = execute_with(&q, &db, algo).expect("sequential");
        for morsel_rows in MORSEL_SIZES {
            for threads in [2, 4, 8] {
                let ctx = ExecContext {
                    threads,
                    morsel_rows,
                    mem_budget: env_mem_budget(),
                };
                let parallel = execute_with_context(&q, &db, algo, &ctx).expect("parallel");
                assert_eq!(
                    sequential.batch(),
                    parallel.batch(),
                    "{algo:?} differs at {ctx:?}"
                );
            }
        }
    }
}

/// `threads: 0` (all cores) is a valid context everywhere the battery runs.
#[test]
fn all_cores_context_matches_sequential() {
    let catalog = make_catalog([120, 60, 60]);
    let db = dict_db(&catalog, 42);
    let q = build_query(&QuerySpec {
        joins: 2,
        join_on_text: true,
        select_on: vec![(0, 0, 3)],
        text_select: vec![(1, 1, 2)],
        text_or: false,
        top: 2,
    });
    let ctx = ExecContext {
        threads: 0,
        morsel_rows: 16,
        mem_budget: env_mem_budget(),
    };
    let sequential = execute_with(&q, &db, JoinAlgo::Hash).expect("sequential");
    let parallel = execute_with_context(&q, &db, JoinAlgo::Hash, &ctx).expect("all cores");
    assert_eq!(sequential.batch(), parallel.batch());
}
