//! Warehouse maintenance battery: on the paper's running example, random
//! append workloads under random per-view refresh-policy assignments must
//! leave the warehouse answering every workload query exactly as a
//! warehouse *freshly built* over the grown database would — delta folds,
//! recomputes and skips are implementation detail, never answer-visible.
//! A second battery repeats the invariant with the stored views paged out
//! to a small buffer pool (`with_mem_budget`), so refresh folds into
//! views that must be pinned back in first.
//!
//! Deterministic companions pin the bookkeeping the proptests rely on:
//! append validation (`WarehouseError::BadRows`), per-view staleness, and
//! the fold/recompute/skip split in [`RefreshReport`].

use std::sync::OnceLock;

use proptest::prelude::*;

use mvdesign::algebra::Value;
use mvdesign::catalog::Catalog;
use mvdesign::core::DesignResult;
use mvdesign::engine::{Database, Generator, GeneratorConfig};
use mvdesign::prelude::Designer;
use mvdesign::warehouse::{RefreshPolicy, Warehouse, WarehouseError};
use mvdesign::workload::paper_example;

/// The design is deterministic, so compute it once for every proptest case.
fn fixture() -> &'static (Catalog, DesignResult) {
    static FIXTURE: OnceLock<(Catalog, DesignResult)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = paper_example();
        let design = Designer::new()
            .design(&scenario.catalog, &scenario.workload)
            .expect("paper example designs");
        (scenario.catalog, design)
    })
}

fn base_db(seed: u64) -> Database {
    let (catalog, _) = fixture();
    Generator::with_config(GeneratorConfig {
        seed,
        scale: 0.004,
        max_rows: 400,
    })
    .database(catalog)
}

/// One append round: for each base relation, a deterministic prefix of a
/// twin-seeded generator's rows, sized by `quarters[i] ∈ 0..=4` quarters.
/// Returns `(relation, rows)` pairs so the same batch can be fed to the
/// warehouse under test and to the reference database.
fn append_batches(seed: u64, quarters: &[usize]) -> Vec<(String, Vec<Vec<Value>>)> {
    let twin = base_db(seed ^ 0xA99E);
    twin.iter()
        .enumerate()
        .filter_map(|(i, (name, src))| {
            let take = src.len() * quarters[i % quarters.len()].min(4) / 4;
            if take == 0 {
                return None;
            }
            Some((name.to_string(), src.rows()[..take].to_vec()))
        })
        .collect()
}

/// Asserts the warehouse answers every workload query exactly like a
/// reference warehouse freshly built over the same grown database.
fn assert_answers_match(warehouse: &Warehouse, reference: &Warehouse, label: &str) {
    let scenario = paper_example();
    for q in scenario.workload.queries() {
        let got = warehouse
            .query_expr(q.root())
            .expect("maintained warehouse answers")
            .canonicalized();
        let want = reference
            .query_expr(q.root())
            .expect("reference warehouse answers")
            .canonicalized();
        assert_eq!(
            got.rows(),
            want.rows(),
            "{label}: query {} diverges from fresh rebuild",
            q.name()
        );
    }
}

const POLICIES: [Option<RefreshPolicy>; 3] = [
    None,
    Some(RefreshPolicy::Recompute),
    Some(RefreshPolicy::Delta),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite invariant: append → refresh → query equals a freshly
    /// built warehouse over the grown database, for random append sizes,
    /// random global and per-view refresh policies, across two rounds
    /// (so folds chain on folds).
    #[test]
    fn maintained_warehouse_equals_fresh_rebuild(
        seed in 0u64..100,
        rounds in proptest::collection::vec(
            proptest::collection::vec(0usize..=4, 4..8), 1..3),
        global in 0usize..2,
        view_policy in proptest::collection::vec(0usize..POLICIES.len(), 8..9),
    ) {
        let (catalog, design) = fixture();
        let mut warehouse = Warehouse::new(catalog.clone(), base_db(seed), design)
            .expect("warehouse builds")
            .with_refresh_policy(if global == 0 {
                RefreshPolicy::Recompute
            } else {
                RefreshPolicy::Delta
            });
        let view_names: Vec<_> = warehouse
            .views()
            .views()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        for (i, name) in view_names.iter().enumerate() {
            warehouse.set_view_refresh_policy(name.clone(), POLICIES[view_policy[i % view_policy.len()]]);
        }

        let mut grown = base_db(seed);
        for (r, quarters) in rounds.iter().enumerate() {
            for (relation, rows) in append_batches(seed + r as u64, quarters) {
                grown
                    .table_mut(relation.as_str())
                    .expect("reference relation")
                    .extend_rows(rows.clone());
                warehouse.append(relation, rows).expect("append is valid");
            }
            let report = warehouse.refresh().expect("refresh succeeds");
            prop_assert_eq!(
                report.recomputed + report.folded + report.skipped,
                view_names.len(),
                "every view is accounted for in round {}", r
            );
        }

        let reference = Warehouse::new(catalog.clone(), grown, design)
            .expect("reference warehouse builds");
        assert_answers_match(&warehouse, &reference, "resident");
    }

    /// The same invariant under memory pressure: stored views are paged
    /// out to a small pool, so delta folds and recomputes read and replace
    /// views through pin/evict/reload.
    #[test]
    fn maintained_warehouse_equals_fresh_rebuild_under_mem_budget(
        seed in 0u64..100,
        quarters in proptest::collection::vec(0usize..=4, 4..8),
        view_policy in proptest::collection::vec(0usize..POLICIES.len(), 8..9),
    ) {
        let (catalog, design) = fixture();
        let budget = std::env::var("MVDESIGN_MEM_BUDGET")
            .ok()
            .map(|v| v.parse().expect("MVDESIGN_MEM_BUDGET is a byte count"))
            .unwrap_or(256);
        let mut warehouse = Warehouse::new(catalog.clone(), base_db(seed), design)
            .expect("warehouse builds")
            .with_mem_budget(Some(budget));
        let view_names: Vec<_> = warehouse
            .views()
            .views()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        for (i, name) in view_names.iter().enumerate() {
            warehouse.set_view_refresh_policy(name.clone(), POLICIES[view_policy[i % view_policy.len()]]);
        }

        let mut grown = base_db(seed);
        for (relation, rows) in append_batches(seed, &quarters) {
            grown
                .table_mut(relation.as_str())
                .expect("reference relation")
                .extend_rows(rows.clone());
            warehouse.append(relation, rows).expect("append is valid");
        }
        let report = warehouse.refresh().expect("refresh under budget succeeds");
        prop_assert_eq!(
            report.recomputed + report.folded + report.skipped,
            view_names.len()
        );

        let reference = Warehouse::new(catalog.clone(), grown, design)
            .expect("reference warehouse builds")
            .with_mem_budget(Some(budget));
        assert_answers_match(&warehouse, &reference, "mem-budget");
    }
}

/// A warehouse built over the paper example, grown by one deterministic
/// append round, with refresh not yet run.
fn grown_warehouse(policy: RefreshPolicy) -> Warehouse {
    let (catalog, design) = fixture();
    let mut warehouse = Warehouse::new(catalog.clone(), base_db(11), design)
        .expect("warehouse builds")
        .with_refresh_policy(policy);
    for (relation, rows) in append_batches(11, &[3, 2, 4, 1]) {
        warehouse.append(relation, rows).expect("append is valid");
    }
    warehouse
}

/// Under the default `Delta` policy at least one view folds its appends
/// instead of recomputing, and nothing is skipped while stale.
#[test]
fn delta_policy_folds_appends() {
    let mut warehouse = grown_warehouse(RefreshPolicy::Delta);
    assert!(warehouse.is_stale());
    let report = warehouse.refresh().expect("refresh succeeds");
    assert!(report.folded > 0, "no view folded its delta: {report:?}");
    assert!(!warehouse.is_stale());
}

/// Under `Recompute` every stale view recomputes — the delta path is a
/// policy, not a mandate.
#[test]
fn recompute_policy_never_folds() {
    let mut warehouse = grown_warehouse(RefreshPolicy::Recompute);
    let report = warehouse.refresh().expect("refresh succeeds");
    assert_eq!(
        report.folded, 0,
        "recompute policy must not fold: {report:?}"
    );
    assert!(report.recomputed > 0);
}

/// A second refresh with nothing stale touches no view at all.
#[test]
fn refresh_skips_fresh_views() {
    let mut warehouse = grown_warehouse(RefreshPolicy::Delta);
    warehouse.refresh().expect("first refresh");
    let report = warehouse.refresh().expect("second refresh");
    assert_eq!(report.folded + report.recomputed, 0, "{report:?}");
    assert!(report.skipped > 0);
}

/// Appending rows with the wrong arity is rejected with
/// [`WarehouseError::BadRows`] and leaves the warehouse fresh.
#[test]
fn append_rejects_malformed_rows() {
    let (catalog, design) = fixture();
    let mut warehouse =
        Warehouse::new(catalog.clone(), base_db(3), design).expect("warehouse builds");
    let relation = warehouse
        .database()
        .iter()
        .next()
        .map(|(n, _)| n.clone())
        .expect("a base relation exists");
    let err = warehouse
        .append(relation.clone(), vec![vec![Value::Int(1)]])
        .expect_err("arity mismatch is rejected");
    assert!(
        matches!(err, WarehouseError::BadRows { relation: ref r, .. } if *r == relation),
        "unexpected error: {err}"
    );
    assert!(
        !warehouse.is_stale(),
        "rejected append must not mark views stale"
    );
}
