//! Property and regression tests for the hash-consing expression arena.
//!
//! [`ExprArena`] decides semantic identity by interning; the canonical
//! string [`Expr::semantic_key`] is an independent oracle for the same
//! equivalence (join commutativity/associativity, predicate normalisation,
//! set-semantics projections). These tests drive random expression pairs —
//! and random semantics-preserving scrambles of one expression — through
//! both and require exact agreement.

use std::sync::Arc;

use proptest::prelude::*;

use mvdesign::algebra::{AttrRef, CompareOp, Expr, ExprArena, JoinCondition, Predicate};

const RELS: [&str; 4] = ["A", "B", "C", "D"];

/// Builds a random SPJ expression from a byte recipe (a tiny stack
/// machine: push leaf / wrap select / wrap project / join top two). Schema
/// validity is irrelevant here: the arena and the key oracle are purely
/// syntactic.
fn build(recipe: &[u8]) -> Arc<Expr> {
    let rel = |op: u8| RELS[(op as usize / 4) % RELS.len()];
    let mut stack: Vec<Arc<Expr>> = vec![Expr::base(RELS[0])];
    for &op in recipe {
        match op % 4 {
            0 => stack.push(Expr::base(rel(op))),
            1 => {
                let e = stack.pop().expect("stack never empties");
                let p = Predicate::cmp(
                    AttrRef::new(rel(op), "x"),
                    CompareOp::Gt,
                    i64::from(op / 16) % 4,
                );
                stack.push(Expr::select(e, p));
            }
            2 => {
                let e = stack.pop().expect("stack never empties");
                stack.push(Expr::project(
                    e,
                    [AttrRef::new(rel(op), "k"), AttrRef::new(rel(op), "x")],
                ));
            }
            _ if stack.len() >= 2 => {
                let r = stack.pop().expect("len >= 2");
                let l = stack.pop().expect("len >= 2");
                let cond = if op & 4 == 0 {
                    JoinCondition::cross()
                } else {
                    JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k"))
                };
                stack.push(Expr::join(l, r, cond));
            }
            _ => stack.push(Expr::base(rel(op))),
        }
    }
    while stack.len() > 1 {
        let r = stack.pop().expect("len > 1");
        let l = stack.pop().expect("len > 1");
        stack.push(Expr::join(l, r, JoinCondition::cross()));
    }
    stack.pop().expect("exactly one root remains")
}

/// Rebuilds `e` with semantics-preserving syntactic noise: joins commute on
/// the given bit pattern and projection attribute lists reverse. The result
/// must stay in the same equivalence class.
fn scramble(e: &Arc<Expr>, flip: u64) -> Arc<Expr> {
    match &**e {
        Expr::Base(_) => Arc::clone(e),
        Expr::Select { input, predicate } => Arc::new(Expr::Select {
            input: scramble(input, flip >> 1),
            predicate: predicate.clone(),
        }),
        Expr::Project { input, attrs } => {
            let mut attrs = attrs.clone();
            attrs.reverse();
            Arc::new(Expr::Project {
                input: scramble(input, flip >> 1),
                attrs,
            })
        }
        Expr::Aggregate {
            input,
            group_by,
            aggs,
        } => Arc::new(Expr::Aggregate {
            input: scramble(input, flip >> 1),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        }),
        Expr::Join { left, right, on } => {
            let l = scramble(left, flip >> 1);
            let r = scramble(right, flip >> 2);
            if flip & 1 == 1 {
                Expr::join(r, l, on.clone())
            } else {
                Expr::join(l, r, on.clone())
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interned identity must agree with the semantic-key oracle on
    /// arbitrary pairs — including every subexpression pair, which is where
    /// shared classes actually occur — and the memoized hash with
    /// [`Expr::semantic_hash`].
    #[test]
    fn arena_agrees_with_semantic_key(
        ra in proptest::collection::vec(any::<u8>(), 0..32),
        rb in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let (a, b) = (build(&ra), build(&rb));
        let mut arena = ExprArena::new();
        let mut seen: Vec<(_, String)> = Vec::new();
        for e in mvdesign::algebra::collect_subexprs(&a)
            .iter()
            .chain(mvdesign::algebra::collect_subexprs(&b).iter())
        {
            let id = arena.intern(e);
            prop_assert_eq!(arena.semantic_hash(id), e.semantic_hash());
            let key = e.semantic_key();
            for (other_id, other_key) in &seen {
                prop_assert_eq!(id == *other_id, &key == other_key);
            }
            seen.push((id, key));
        }
    }

    /// A scrambled copy (commuted joins, reversed projection lists) always
    /// lands on the class of the original.
    #[test]
    fn scrambled_expressions_share_a_class(
        recipe in proptest::collection::vec(any::<u8>(), 0..32),
        flip in any::<u64>(),
    ) {
        let e = build(&recipe);
        let noisy = scramble(&e, flip);
        prop_assert_eq!(noisy.semantic_key(), e.semantic_key());
        let mut arena = ExprArena::new();
        prop_assert_eq!(arena.intern(&e), arena.intern(&noisy));
    }

    /// Non-mutating lookup agrees with interning: the same id after, even
    /// for a differently-shaped member of the class.
    #[test]
    fn lookup_matches_intern(
        recipe in proptest::collection::vec(any::<u8>(), 0..32),
        flip in any::<u64>(),
    ) {
        let e = build(&recipe);
        let mut arena = ExprArena::new();
        let id = arena.intern(&e);
        let noisy = scramble(&e, flip);
        prop_assert_eq!(arena.lookup(&noisy), Some(id));
    }
}

fn tmp1() -> Arc<Expr> {
    Expr::select(
        Expr::base("Div"),
        Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
    )
}

#[test]
fn join_commutation_lands_on_the_same_exprid() {
    let on = JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did"));
    let a = Expr::join(Expr::base("Pd"), tmp1(), on.clone());
    let b = Expr::join(tmp1(), Expr::base("Pd"), on);
    let mut arena = ExprArena::new();
    assert_eq!(arena.intern(&a), arena.intern(&b));
}

/// The designer's shared warm stats cache must make the produced design a
/// pure function of its inputs: the same workload at parallelism 0 (all
/// cores), 1 (sequential) and 4 yields bit-identical costs and view sets.
#[test]
fn paper_design_is_bit_identical_across_parallelism() {
    use mvdesign::core::{Designer, DesignerConfig};
    use mvdesign::workload::paper_example;

    let scenario = paper_example();
    let designs: Vec<_> = [0usize, 1, 4]
        .into_iter()
        .map(|parallelism| {
            let designer = Designer::with_config(DesignerConfig {
                parallelism,
                ..Default::default()
            });
            designer
                .design(&scenario.catalog, &scenario.workload)
                .expect("paper workload designs")
        })
        .collect();
    let baseline = &designs[0];
    for d in &designs[1..] {
        assert_eq!(d.materialized, baseline.materialized);
        assert_eq!(d.candidate_index, baseline.candidate_index);
        assert_eq!(d.cost.total.to_bits(), baseline.cost.total.to_bits());
        assert_eq!(
            d.cost.query_processing.to_bits(),
            baseline.cost.query_processing.to_bits()
        );
        assert_eq!(
            d.cost.maintenance.to_bits(),
            baseline.cost.maintenance.to_bits()
        );
        let pairs = d.candidate_costs.iter().zip(&baseline.candidate_costs);
        assert_eq!(d.candidate_costs.len(), baseline.candidate_costs.len());
        for (a, b) in pairs {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn select_predicate_reordering_lands_on_the_same_exprid() {
    let p = Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA");
    let q = Predicate::cmp(AttrRef::new("Div", "size"), CompareOp::Gt, 10);
    let a = Expr::select(Expr::base("Div"), Predicate::and([p.clone(), q.clone()]));
    let b = Expr::select(Expr::base("Div"), Predicate::and([q, p]));
    let mut arena = ExprArena::new();
    assert_eq!(arena.intern(&a), arena.intern(&b));
}
