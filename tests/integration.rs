//! Cross-crate integration tests: SQL → optimizer → MVPP → selection →
//! evaluation, validated against the in-memory execution engine.

use std::collections::BTreeSet;
use std::sync::Arc;

use mvdesign::algebra::{parse_query_with, Expr};
use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, GenerateConfig, GreedySelection, MaintenanceMode,
    UpdateWeighting, Workload,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::engine::{execute, measure, Database, Generator, GeneratorConfig};
use mvdesign::optimizer::Planner;
use mvdesign::prelude::Designer;
use mvdesign::workload::{paper_example, StarSchema, StarSchemaConfig};

/// A generated database for the paper's catalog, small enough for
/// nested-loop joins in tests.
fn paper_db() -> Database {
    let scenario = paper_example();
    Generator::with_config(GeneratorConfig {
        seed: 11,
        scale: 0.004,
        max_rows: 400,
    })
    .database(&scenario.catalog)
}

#[test]
fn optimizer_preserves_query_results_on_real_data() {
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let db = paper_db();
    let planner = Planner::new();
    for q in scenario.workload.queries() {
        let naive =
            execute(q.root(), &db).unwrap_or_else(|e| panic!("{} naive failed: {e}", q.name()));
        let optimized_plan = planner.optimize(q.root(), &est);
        let optimized = execute(&optimized_plan, &db)
            .unwrap_or_else(|e| panic!("{} optimized failed: {e}", q.name()));
        assert_eq!(
            naive.canonicalized().rows(),
            optimized.canonicalized().rows(),
            "{} results changed after optimization",
            q.name()
        );
    }
}

#[test]
fn mvpp_merge_preserves_query_results_on_real_data() {
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let db = paper_db();
    let candidates = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig::default(),
    );
    for (i, mvpp) in candidates.iter().enumerate() {
        for (name, _, root) in mvpp.roots() {
            let original = scenario
                .workload
                .query(name)
                .expect("root name comes from the workload");
            let expected = execute(original.root(), &db).expect("original executes");
            let merged = execute(mvpp.node(*root).expr(), &db)
                .unwrap_or_else(|e| panic!("MVPP {i} {name} failed: {e}"));
            assert_eq!(
                expected.canonicalized().rows(),
                merged.canonicalized().rows(),
                "MVPP {i} changed the result of {name}"
            );
        }
    }
}

#[test]
fn measured_io_agrees_with_cost_model_on_actual_cardinalities() {
    // For a plan over data whose cardinalities we control, the engine's
    // measured block accesses should match the analytic model's shape:
    // optimized plans measure no more I/O than naive plans.
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let db = paper_db();
    let planner = Planner::new();
    for q in scenario.workload.queries() {
        let (_, io_naive) = measure(q.root(), &db, 10.0).expect("naive executes");
        let optimized = planner.optimize(q.root(), &est);
        let (_, io_opt) = measure(&optimized, &db, 10.0).expect("optimized executes");
        assert!(
            io_opt.total() <= io_naive.total() * 1.05,
            "{}: optimized measured {} vs naive {}",
            q.name(),
            io_opt.total(),
            io_naive.total()
        );
    }
}

#[test]
fn designer_end_to_end_on_paper_example() {
    let scenario = paper_example();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("paper workload designs");
    // The chosen design beats materialize-nothing and materialize-everything.
    let none = evaluate(
        &design.mvpp,
        &BTreeSet::new(),
        MaintenanceMode::SharedRecompute,
    );
    let all: BTreeSet<_> = design.mvpp.mvpp().roots().iter().map(|r| r.2).collect();
    let all_cost = evaluate(&design.mvpp, &all, MaintenanceMode::SharedRecompute);
    assert!(design.cost.total < none.total);
    assert!(design.cost.total < all_cost.total);
    // Candidate bookkeeping is consistent.
    assert_eq!(design.candidate_costs.len(), 4);
    assert!((design.candidate_costs[design.candidate_index] - design.cost.total).abs() < 1e-6);
}

#[test]
fn materialized_views_are_nondegenerate_tables() {
    // Materialize the chosen views as actual tables via the engine.
    let scenario = paper_example();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("paper workload designs");
    let db = paper_db();
    assert!(!design.materialized.is_empty());
    for id in &design.materialized {
        let node = design.mvpp.mvpp().node(*id);
        let view = execute(node.expr(), &db).expect("view computes");
        assert!(!view.attrs().is_empty());
    }
}

#[test]
fn star_schema_pipeline_runs_and_greedy_helps() {
    let scenario = StarSchema::with_config(StarSchemaConfig {
        dimensions: 3,
        queries: 6,
        fact_records: 200_000.0,
        dimension_records: 2_000.0,
        ..StarSchemaConfig::default()
    })
    .scenario();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Analytic,
        PaperCostModel::default(),
    );
    let mvpps = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig::default(),
    );
    assert!(!mvpps.is_empty());
    let annotated = AnnotatedMvpp::annotate(mvpps[0].clone(), &est, UpdateWeighting::Max);
    let (set, _) = GreedySelection::new().run(&annotated);
    let greedy = evaluate(&annotated, &set, MaintenanceMode::SharedRecompute);
    let none = evaluate(
        &annotated,
        &BTreeSet::new(),
        MaintenanceMode::SharedRecompute,
    );
    assert!(greedy.total <= none.total);
}

#[test]
fn merged_star_queries_still_execute_correctly() {
    let scenario = StarSchema::with_config(StarSchemaConfig {
        dimensions: 3,
        queries: 5,
        fact_records: 50_000.0,
        dimension_records: 1_000.0,
        ..StarSchemaConfig::default()
    })
    .scenario();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Analytic,
        PaperCostModel::default(),
    );
    let db = Generator::with_config(GeneratorConfig {
        seed: 3,
        scale: 0.01,
        max_rows: 300,
    })
    .database(&scenario.catalog);
    let mvpp = &generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )[0];
    for (name, _, root) in mvpp.roots() {
        let original = scenario.workload.query(name).expect("known query");
        let a = execute(original.root(), &db).expect("original executes");
        let b = execute(mvpp.node(*root).expr(), &db).expect("merged executes");
        assert_eq!(
            a.canonicalized().rows(),
            b.canonicalized().rows(),
            "merge changed {name}"
        );
    }
}

#[test]
fn workload_with_disjoint_queries_still_designs() {
    // Queries with no overlap at all: the MVPP degenerates to a forest and
    // the machinery must still work.
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let q1 = parse_query_with(
        "SELECT name FROM Part WHERE supplier = 'acme'",
        &scenario.catalog,
    )
    .expect("parses");
    let q2 = parse_query_with(
        "SELECT name FROM Customer WHERE city = 'LA'",
        &scenario.catalog,
    )
    .expect("parses");
    let w = Workload::new([
        mvdesign::algebra::Query::new("A", 3.0, q1),
        mvdesign::algebra::Query::new("B", 4.0, q2),
    ])
    .expect("valid workload");
    let mvpps = generate_mvpps(&w, &est, &Planner::new(), GenerateConfig::default());
    assert_eq!(mvpps.len(), 2);
    for m in &mvpps {
        assert_eq!(m.roots().len(), 2);
    }
}

#[test]
fn single_query_workload_designs_without_sharing() {
    let scenario = paper_example();
    let q = scenario.workload.query("Q1").expect("Q1 exists").clone();
    let w = Workload::new([q]).expect("valid");
    let design = Designer::new()
        .design(&scenario.catalog, &w)
        .expect("designs");
    assert_eq!(design.candidate_costs.len(), 1);
    assert!(design.cost.total.is_finite());
}

#[test]
fn identical_duplicate_queries_share_everything() {
    let scenario = paper_example();
    let q1 = scenario.workload.query("Q1").expect("Q1").clone();
    let w = Workload::new([
        q1.clone(),
        mvdesign::algebra::Query::new("Q1b", 3.0, Arc::clone(q1.root())),
    ])
    .expect("valid");
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let mvpp = &generate_mvpps(
        &w,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )[0];
    // Both queries resolve to the same root node.
    let roots: BTreeSet<_> = mvpp.roots().iter().map(|r| r.2).collect();
    assert_eq!(roots.len(), 1);
}

#[test]
fn expr_for_paper_q1_round_trips_through_engine_and_estimator() {
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let q1 = scenario.workload.query("Q1").expect("Q1").root();
    let stats = est.stats(q1);
    assert!(stats.records > 0.0);
    let db = paper_db();
    execute(q1, &db).expect("Q1 executes on generated data");
}

#[test]
fn base_relation_expr_executes_directly() {
    let db = paper_db();
    let t = execute(&Expr::base("Customer"), &db).expect("customer table exists");
    assert!(!t.is_empty());
}
