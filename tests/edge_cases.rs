//! Hardening tests: degenerate statistics, extreme workloads, and inputs
//! the machinery must survive rather than excel at.

use std::collections::BTreeSet;
use std::sync::Arc;

use mvdesign::algebra::{
    parse_query_with, AttrRef, CompareOp, Expr, JoinCondition, Predicate, Query,
};
use mvdesign::catalog::{AttrType, Catalog};
use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, GenerateConfig, GreedySelection, MaintenanceMode,
    Mvpp, UpdateWeighting, Workload,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::engine::{execute, Database, Table};
use mvdesign::optimizer::Planner;
use mvdesign::prelude::Designer;

fn minimal_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.relation("R")
        .attr("k", AttrType::Int)
        .attr("x", AttrType::Int)
        .records(100.0)
        .blocks(10.0)
        .update_frequency(1.0)
        .finish()
        .expect("valid");
    c.relation("S")
        .attr("k", AttrType::Int)
        .records(100.0)
        .blocks(10.0)
        .update_frequency(1.0)
        .finish()
        .expect("valid");
    c
}

#[test]
fn zero_frequency_queries_are_tolerated() {
    let c = minimal_catalog();
    let q = parse_query_with("SELECT x FROM R", &c).expect("parses");
    let w = Workload::new([Query::new("never", 0.0, q)]).expect("valid");
    let design = Designer::new().design(&c, &w).expect("designs");
    // Nothing is worth materializing for a query that never runs.
    assert_eq!(design.cost.query_processing, 0.0);
    assert!(design.materialized.is_empty());
}

#[test]
fn zero_update_frequency_materializes_aggressively() {
    let mut c = minimal_catalog();
    c.set_update_frequency("R", 0.0).expect("known");
    c.set_update_frequency("S", 0.0).expect("known");
    let q = parse_query_with("SELECT x FROM R, S WHERE R.k = S.k", &c).expect("parses");
    let w = Workload::new([Query::new("hot", 100.0, q)]).expect("valid");
    let design = Designer::new().design(&c, &w).expect("designs");
    // Free maintenance: the root itself should be materialized.
    assert!(!design.materialized.is_empty());
    let root = design.mvpp.mvpp().roots()[0].2;
    assert!(design.materialized.contains(&root));
}

#[test]
fn empty_relations_do_not_divide_by_zero() {
    let mut c = Catalog::new();
    c.relation("Empty")
        .attr("x", AttrType::Int)
        .records(0.0)
        .blocks(0.0)
        .update_frequency(1.0)
        .finish()
        .expect("valid");
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    let q = Expr::select(
        Expr::base("Empty"),
        Predicate::cmp(AttrRef::new("Empty", "x"), CompareOp::Eq, 1),
    );
    let stats = est.stats(&q);
    assert_eq!(stats.records, 0.0);
    assert!(est.tree_cost(&q).is_finite());
    assert!(est.tree_cost(&q) >= 0.0);
}

#[test]
fn single_relation_workload_round_trips() {
    let c = minimal_catalog();
    let q = parse_query_with("SELECT x FROM R WHERE x > 5", &c).expect("parses");
    let w = Workload::new([Query::new("only", 3.0, q)]).expect("valid");
    let design = Designer::new().design(&c, &w).expect("designs");
    assert!(design.cost.total.is_finite());
}

#[test]
fn deep_selection_chains_fuse_and_survive() {
    let c = minimal_catalog();
    let mut e = Expr::base("R");
    for i in 0..64 {
        e = Expr::select(e, Predicate::cmp(AttrRef::new("R", "x"), CompareOp::Ge, i));
    }
    // Selects over selects fuse into one predicate node.
    assert!(e.node_count() <= 3, "node count {}", e.node_count());
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    assert!(est.tree_cost(&e).is_finite());
}

#[test]
fn wide_disjunctions_estimate_within_bounds() {
    let c = minimal_catalog();
    let parts: Vec<Predicate> = (0..100)
        .map(|i| Predicate::cmp(AttrRef::new("R", "x"), CompareOp::Eq, i))
        .collect();
    let p = Predicate::or(parts);
    let s = p.selectivity(&c);
    assert!((0.0..=1.0).contains(&s), "selectivity {s}");
}

#[test]
fn many_relation_query_falls_back_gracefully() {
    // 16 relations exceeds the default DP limit (12): greedy ordering.
    let mut c = Catalog::new();
    let mut from = Vec::new();
    for i in 0..16 {
        c.relation(format!("T{i}"))
            .attr("k", AttrType::Int)
            .records(100.0)
            .blocks(10.0)
            .update_frequency(1.0)
            .finish()
            .expect("valid");
        from.push(format!("T{i}"));
    }
    let mut conds = Vec::new();
    for i in 1..16 {
        conds.push(format!("T{}.k = T{i}.k", i - 1));
    }
    let sql = format!(
        "SELECT T0.k FROM {} WHERE {}",
        from.join(", "),
        conds.join(" AND ")
    );
    let q = parse_query_with(&sql, &c).expect("parses");
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    let plan = Planner::new().optimize(&q, &est);
    assert_eq!(plan.base_relations().len(), 16);
    assert!(est.tree_cost(&plan) <= est.tree_cost(&q));
}

#[test]
fn self_join_keeps_original_shape() {
    // Two occurrences of R: the join-ordering machinery refuses (correctly)
    // and the plan keeps its structure with selections pushed down.
    let c = minimal_catalog();
    let e = Expr::select(
        Expr::join(
            Expr::base("R"),
            Expr::base("R"),
            JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("R", "k")),
        ),
        Predicate::cmp(AttrRef::new("R", "x"), CompareOp::Gt, 1),
    );
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    let plan = Planner::new().optimize(&e, &est);
    assert_eq!(plan.base_relations().len(), 1);
    assert!(est.tree_cost(&plan).is_finite());
}

#[test]
fn evaluate_with_unrelated_ids_in_m_is_well_defined() {
    // Materializing every node including leaves: leaves are no-ops.
    let c = minimal_catalog();
    let q = parse_query_with("SELECT x FROM R, S WHERE R.k = S.k", &c).expect("parses");
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    let mut mvpp = Mvpp::new();
    mvpp.insert_query("Q", 1.0, &q);
    let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
    let everything: BTreeSet<_> = a.mvpp().nodes().iter().map(|n| n.id()).collect();
    let cost = evaluate(&a, &everything, MaintenanceMode::SharedRecompute);
    assert!(cost.total.is_finite());
    assert!(cost.query_processing > 0.0);
}

#[test]
fn duplicate_rows_and_text_aggregation_are_stable() {
    let mut db = Database::new();
    db.insert_table(Table::new(
        "R",
        [AttrRef::new("R", "k"), AttrRef::new("R", "t")],
        vec![
            vec![
                mvdesign::algebra::Value::Int(1),
                mvdesign::algebra::Value::text("b"),
            ],
            vec![
                mvdesign::algebra::Value::Int(1),
                mvdesign::algebra::Value::text("a"),
            ],
            vec![
                mvdesign::algebra::Value::Int(1),
                mvdesign::algebra::Value::text("a"),
            ],
        ],
    ));
    // MIN/MAX over text, SUM over text (contributes zero), COUNT.
    let e = Expr::aggregate(
        Expr::base("R"),
        [AttrRef::new("R", "k")],
        [
            mvdesign::algebra::AggExpr::new(
                mvdesign::algebra::AggFunc::Min,
                AttrRef::new("R", "t"),
                "lo",
            ),
            mvdesign::algebra::AggExpr::new(
                mvdesign::algebra::AggFunc::Max,
                AttrRef::new("R", "t"),
                "hi",
            ),
            mvdesign::algebra::AggExpr::new(
                mvdesign::algebra::AggFunc::Sum,
                AttrRef::new("R", "t"),
                "s",
            ),
        ],
    );
    let out = execute(&e, &db).expect("executes");
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows()[0][1], mvdesign::algebra::Value::text("a"));
    assert_eq!(out.rows()[0][2], mvdesign::algebra::Value::text("b"));
    assert_eq!(out.rows()[0][3], mvdesign::algebra::Value::Int(0));
}

#[test]
fn identical_predicates_across_queries_share_leaf_filters_exactly() {
    // When every query applies the same filter, the leaf filter equals it and
    // no query re-applies anything: the σ appears exactly once in the DAG.
    let c = minimal_catalog();
    let sql = "SELECT x FROM R, S WHERE R.k = S.k AND R.x > 3";
    let q1 = parse_query_with(sql, &c).expect("parses");
    let q2 = parse_query_with(sql, &c).expect("parses");
    let w = Workload::new([Query::new("A", 2.0, q1), Query::new("B", 5.0, q2)]).expect("valid");
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    let mvpp = &generate_mvpps(
        &w,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )[0];
    let sigma_count = mvpp
        .nodes()
        .iter()
        .filter(|n| matches!(&**n.expr(), Expr::Select { .. }))
        .count();
    assert_eq!(sigma_count, 1, "dot:\n{}", mvpp.to_dot("m"));
}

#[test]
fn greedy_trace_is_internally_consistent() {
    let scenario = mvdesign::workload::paper_example();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("designs");
    let (set, trace) = GreedySelection::new().run(&design.mvpp);
    assert_eq!(set, design.materialized);
    // Every materialized node appears in the trace as Materialized and not
    // later removed.
    for id in &set {
        let verdicts: Vec<_> = trace
            .steps
            .iter()
            .filter(|s| s.node == *id)
            .map(|s| &s.verdict)
            .collect();
        assert!(
            verdicts
                .iter()
                .any(|v| matches!(v, mvdesign::core::TraceVerdict::Materialized)),
            "{id:?} missing from trace"
        );
        assert!(
            !verdicts
                .iter()
                .any(|v| matches!(v, mvdesign::core::TraceVerdict::RemovedRedundant)),
            "{id:?} removed but still in M"
        );
    }
}

#[test]
fn nan_and_negative_statistics_are_rejected_at_the_boundary() {
    let mut c = Catalog::new();
    assert!(c
        .relation("Bad")
        .attr("x", AttrType::Int)
        .update_frequency(f64::NAN)
        .finish()
        .is_err());
    let mut c2 = Catalog::new();
    c2.relation("R")
        .attr("x", AttrType::Int)
        .records(1.0)
        .blocks(1.0)
        .finish()
        .expect("valid");
    assert!(c2.set_default_selectivity(f64::INFINITY).is_err());
    assert!(c2.set_update_frequency("R", -1.0).is_err());
    assert!(c2
        .set_join_selectivity(AttrRef::new("R", "x"), AttrRef::new("R", "x"), f64::NAN)
        .is_err());
}

#[test]
fn mvpp_of_sixty_queries_stays_tractable() {
    // Stress: many queries over a small schema; generation + greedy must
    // finish quickly and produce a connected design.
    let c = minimal_catalog();
    let queries: Vec<Query> = (0..60)
        .map(|i| {
            let sql = format!("SELECT x FROM R, S WHERE R.k = S.k AND R.x > {}", i % 7);
            Query::new(
                format!("Q{i}"),
                1.0 + (i % 5) as f64,
                parse_query_with(&sql, &c).expect("parses"),
            )
        })
        .collect();
    let w = Workload::new(queries).expect("valid");
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    let mvpps = generate_mvpps(
        &w,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 2 },
    );
    assert_eq!(mvpps.len(), 2);
    let a = AnnotatedMvpp::annotate(mvpps[0].clone(), &est, UpdateWeighting::Max);
    let (m, _) = GreedySelection::new().run(&a);
    let greedy = evaluate(&a, &m, MaintenanceMode::SharedRecompute).total;
    let none = evaluate(&a, &BTreeSet::new(), MaintenanceMode::SharedRecompute).total;
    assert!(greedy <= none);
    // Only 7 distinct filters exist, so the DAG must be far smaller than
    // 60 separate plans would suggest.
    assert!(a.mvpp().len() < 60, "nodes: {}", a.mvpp().len());
}

#[test]
fn arc_sharing_means_interning_is_cheap_for_identical_subtrees() {
    let shared: Arc<Expr> = Expr::base("R");
    let mut mvpp = Mvpp::new();
    let a = mvpp.intern(&shared);
    let b = mvpp.intern(&shared);
    assert_eq!(a, b);
    assert_eq!(mvpp.len(), 1);
}
