//! Differential battery for delta-propagation maintenance: on random
//! SPJ + aggregate plans over int/dict/plain-text join keys, folding the
//! append deltas captured by `split_appends` into a stored view
//! (`refresh_view_delta`) must produce exactly the bag of rows a full
//! recompute returns on the grown database — for every join algorithm,
//! across chained append rounds (including empty ones), and with the base
//! tables paged out to a starved buffer pool with a spill-forcing operator
//! budget.
//!
//! CI's low-memory job re-runs this battery with the `MVDESIGN_MEM_BUDGET`
//! env knob set to a few hundred bytes, pushing even the resident draws
//! through the eviction and spill paths.

use std::sync::Arc;

use proptest::prelude::*;

use mvdesign::algebra::{
    AggExpr, AggFunc, AttrRef, CompareOp, Expr, JoinCondition, Predicate, Value,
};
use mvdesign::catalog::{AttrType, Catalog};
use mvdesign::engine::{
    execute, refresh_view_delta, split_appends, BufferPool, Database, ExecContext, Generator,
    GeneratorConfig, JoinAlgo, Table,
};

/// A three-relation catalog with an integer join key, an integer payload
/// and a low-cardinality text attribute per relation — the same plan space
/// as the paged and morsel batteries, so delta maintenance is probed on
/// exactly the shapes the rest of the engine is verified on.
fn make_catalog(sizes: [u32; 3]) -> Catalog {
    let mut c = Catalog::new();
    for (i, name) in ["R0", "R1", "R2"].iter().enumerate() {
        c.relation(*name)
            .attr("k", AttrType::Int)
            .attr("x", AttrType::Int)
            .attr("t", AttrType::Text)
            .records(f64::from(sizes[i].max(4)))
            .blocks((f64::from(sizes[i].max(4)) / 10.0).ceil())
            .update_frequency(1.0)
            .selectivity("x", 0.3)
            .selectivity("t", 0.3)
            .finish()
            .expect("generated relation is valid");
    }
    c
}

/// The shape of one random view definition: a chain join (on the integer
/// or the text key), integer and text selections, and either a projection
/// or a group-by-with-aggregates on top.
#[derive(Debug, Clone)]
struct ViewSpec {
    joins: usize,
    join_on_text: bool,
    select_on: Vec<(usize, usize, i64)>,
    text_select: Vec<(usize, usize, i64)>,
    top: usize,
}

fn view_strategy() -> impl Strategy<Value = ViewSpec> {
    (
        0usize..=2,
        any::<bool>(),
        proptest::collection::vec((0usize..3, 0usize..3, 0i64..6), 0..3),
        proptest::collection::vec((0usize..3, 0usize..3, 0i64..6), 0..2),
        0usize..3,
    )
        .prop_map(
            |(joins, join_on_text, select_on, text_select, top)| ViewSpec {
                joins,
                join_on_text,
                select_on,
                text_select,
                top,
            },
        )
}

fn build_view(spec: &ViewSpec) -> Arc<Expr> {
    let key = if spec.join_on_text { "t" } else { "k" };
    let mut expr = Expr::base("R0");
    for i in 1..=spec.joins {
        let prev = format!("R{}", i - 1);
        let cur = format!("R{i}");
        expr = Expr::join(
            expr,
            Expr::base(cur.as_str()),
            JoinCondition::on(AttrRef::new(prev, key), AttrRef::new(cur, key)),
        );
    }
    let ops = [CompareOp::Le, CompareOp::Eq, CompareOp::Gt];
    let mut preds = Vec::new();
    for (rel, op, lit) in &spec.select_on {
        if *rel <= spec.joins {
            preds.push(Predicate::cmp(
                AttrRef::new(format!("R{rel}"), "x"),
                ops[*op],
                *lit,
            ));
        }
    }
    for (rel, op, lit) in &spec.text_select {
        if *rel <= spec.joins {
            preds.push(Predicate::cmp(
                AttrRef::new(format!("R{rel}"), "t"),
                ops[*op],
                Value::text(format!("v{lit}")),
            ));
        }
    }
    expr = Expr::select(expr, Predicate::and(preds));
    match spec.top {
        1 => {
            let mut attrs = vec![AttrRef::new("R0", "t")];
            if spec.joins >= 1 {
                attrs.push(AttrRef::new("R1", "x"));
            }
            Expr::project(expr, attrs)
        }
        2 => Expr::aggregate(
            expr,
            [AttrRef::new("R0", "t")],
            [
                AggExpr::new(AggFunc::Sum, AttrRef::new("R0", "x"), "sx"),
                AggExpr::new(AggFunc::Min, AttrRef::new("R0", "k"), "mk"),
                AggExpr::count_star("n"),
            ],
        ),
        _ => expr,
    }
}

/// A generated database: every text column arrives dictionary-encoded.
fn dict_db(catalog: &Catalog, seed: u64) -> Database {
    Generator::with_config(GeneratorConfig {
        seed,
        scale: 1.0,
        max_rows: 50,
    })
    .database(catalog)
}

/// The same data rebuilt row-major, storing text as plain `Text` columns —
/// the identical plans then exercise delta slicing and folding over the
/// non-dictionary representation.
fn plain_text_db(db: &Database) -> Database {
    let mut plain = Database::new();
    for (name, t) in db.iter() {
        plain.insert_table(Table::new(
            name.clone(),
            t.attrs().to_vec(),
            t.rows().to_vec(),
        ));
    }
    plain
}

/// Appends a deterministic prefix of each relation's twin rows to `db` and
/// returns the pre-append row counts. `quarters[i]` ∈ 0..=4 selects how
/// much of relation `i`'s twin lands in the delta (0 = untouched).
fn append_round(
    db: &mut Database,
    catalog: &Catalog,
    seed: u64,
    quarters: [usize; 3],
) -> std::collections::BTreeMap<mvdesign::algebra::RelName, usize> {
    let snapshot = db.iter().map(|(n, t)| (n.clone(), t.len())).collect();
    let twin = dict_db(catalog, seed ^ 0x5EED);
    for (i, name) in ["R0", "R1", "R2"].iter().enumerate() {
        let src = twin.table(name).expect("twin has the relation");
        let take = src.len() * quarters[i].min(4) / 4;
        if take == 0 {
            continue;
        }
        let rows = src.rows()[..take].to_vec();
        db.table_mut(name).expect("base table").extend_rows(rows);
    }
    snapshot
}

/// Byte budget for the paged variant — overridable by the CI low-memory
/// knob.
fn mem_budget() -> usize {
    match std::env::var("MVDESIGN_MEM_BUDGET") {
        Ok(v) => v.parse().expect("MVDESIGN_MEM_BUDGET is a byte count"),
        Err(_) => 512,
    }
}

const ALGOS: [JoinAlgo; 3] = [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole invariant: for random view definitions × key encodings
    /// × join algorithms × chained random append rounds, a delta fold —
    /// whenever the maintenance plan offers one — is bag-equal to a full
    /// recompute on the grown database. Views whose plan falls back to
    /// recompute re-enter the next round, so fallbacks are chained with
    /// folds in one history.
    #[test]
    fn delta_fold_matches_full_recompute(
        spec in view_strategy(),
        sizes in proptest::array::uniform3(8u32..60),
        seed in 0u64..1_000,
        rounds in proptest::collection::vec(proptest::array::uniform3(0usize..=4), 1..3),
        plain_text in any::<bool>(),
        algo_sel in 0usize..ALGOS.len(),
    ) {
        let catalog = make_catalog(sizes);
        let generated = dict_db(&catalog, seed);
        let mut db = if plain_text { plain_text_db(&generated) } else { generated };
        let view = build_view(&spec);
        let ctx = ExecContext::default();
        let algo = ALGOS[algo_sel];

        let mut stored = execute(&view, &db).expect("view builds").into_batch();
        for (r, quarters) in rounds.iter().enumerate() {
            let snapshot = append_round(&mut db, &catalog, seed + r as u64, *quarters);
            let (old, deltas) = split_appends(&db, &snapshot);
            let recomputed = execute(&view, &db).expect("recompute runs");
            match refresh_view_delta(&stored, &view, &old, &deltas, algo, &ctx)
                .expect("delta refresh runs")
            {
                Some(folded) => {
                    let canon =
                        Table::from_batch("v", folded.clone()).canonicalized();
                    prop_assert_eq!(
                        canon.rows(),
                        recomputed.canonicalized().rows(),
                        "fold diverges in round {} under {:?} for {:?}",
                        r, algo, spec
                    );
                    stored = folded;
                }
                None => stored = recomputed.into_batch(),
            }
        }
    }

    /// The same invariant with the base tables paged out to a starved pool
    /// (and a spill-forcing operator budget): delta capture slices and the
    /// old-side join terms must read through pin/evict/reload without the
    /// storage layer showing through in the folded rows.
    #[test]
    fn delta_fold_is_storage_invariant_under_paging(
        spec in view_strategy(),
        sizes in proptest::array::uniform3(8u32..40),
        seed in 0u64..500,
        quarters in proptest::array::uniform3(0usize..=4),
        page_rows in 1usize..16,
        algo_sel in 0usize..ALGOS.len(),
    ) {
        let catalog = make_catalog(sizes);
        let mut db = dict_db(&catalog, seed);
        let view = build_view(&spec);
        let algo = ALGOS[algo_sel];
        let ctx = ExecContext { threads: 1, morsel_rows: 16, mem_budget: Some(mem_budget()) };

        let stored = execute(&view, &db).expect("view builds").into_batch();
        let snapshot = append_round(&mut db, &catalog, seed, quarters);
        let recomputed = execute(&view, &db).expect("recompute runs");

        // Page the grown database into a zero-byte pool: every pin during
        // delta splitting and old-side evaluation misses and reloads.
        let pool = BufferPool::new(Some(0));
        let mut paged = db.clone();
        paged.page_out(&pool, page_rows);
        let (old, deltas) = split_appends(&paged, &snapshot);
        match refresh_view_delta(&stored, &view, &old, &deltas, algo, &ctx)
            .expect("paged delta refresh runs")
        {
            Some(folded) => {
                let canon = Table::from_batch("v", folded).canonicalized();
                prop_assert_eq!(
                    canon.rows(),
                    recomputed.canonicalized().rows(),
                    "paged fold diverges under {:?} for {:?}",
                    algo, spec
                );
            }
            None => {
                // Recompute fallback: nothing folded, nothing to compare —
                // the resident recompute above is the refreshed state.
            }
        }
    }
}

/// Deterministic spot check: an insert-only delta through a two-way join
/// folds (no recompute fallback) and lands on the recompute bag — the
/// canonical Apply-plan path the warehouse exercises on every refresh.
#[test]
fn join_view_folds_insert_only_appends() {
    let catalog = make_catalog([30, 30, 30]);
    let mut db = dict_db(&catalog, 7);
    let view = build_view(&ViewSpec {
        joins: 1,
        join_on_text: false,
        select_on: vec![],
        text_select: vec![],
        top: 0,
    });
    let stored = execute(&view, &db).expect("view builds").into_batch();
    let snapshot = append_round(&mut db, &catalog, 7, [2, 3, 0]);
    let (old, deltas) = split_appends(&db, &snapshot);
    let folded = refresh_view_delta(
        &stored,
        &view,
        &old,
        &deltas,
        JoinAlgo::Hash,
        &ExecContext::default(),
    )
    .expect("delta refresh runs")
    .expect("insert-only join delta folds");
    let recomputed = execute(&view, &db).expect("recompute runs");
    assert_eq!(
        Table::from_batch("v", folded).canonicalized().rows(),
        recomputed.canonicalized().rows()
    );
}
