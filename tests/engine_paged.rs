//! Differential battery for paged out-of-core execution: on random
//! SPJ + aggregate plans, every join algorithm, int/dict/plain-text join
//! keys, pool budgets {tiny (forces eviction and operator spill),
//! half-data, unbounded} and thread counts {1, 4}, the paged engine must
//! produce tables **bit-identical** to the fully resident kernels — same
//! column representation, same row order, not merely the same bag.
//! Eviction changes residency, never content, so no pool size, eviction
//! order or spill path may show through in a result.
//!
//! CI's low-memory job re-runs this battery (and `engine_morsel`) with the
//! `MVDESIGN_MEM_BUDGET` env knob set to a few hundred bytes, which
//! overrides the sampled budgets so even the "unbounded" draws evict and
//! spill.

use std::sync::Arc;

use proptest::prelude::*;

use mvdesign::algebra::{
    AggExpr, AggFunc, AttrRef, CompareOp, Expr, JoinCondition, Predicate, Value,
};
use mvdesign::catalog::{AttrType, Catalog};
use mvdesign::engine::{
    batch_bytes, execute_with, execute_with_context, measure, measure_paged, BufferPool, Database,
    ExecContext, Generator, GeneratorConfig, JoinAlgo, Table,
};

/// A three-relation catalog with an integer join key, an integer payload and
/// a low-cardinality text attribute per relation (same shape as the morsel
/// battery, so the two suites cover the same plan space).
fn make_catalog(sizes: [u32; 3]) -> Catalog {
    let mut c = Catalog::new();
    for (i, name) in ["R0", "R1", "R2"].iter().enumerate() {
        c.relation(*name)
            .attr("k", AttrType::Int)
            .attr("x", AttrType::Int)
            .attr("t", AttrType::Text)
            .records(f64::from(sizes[i].max(4)))
            .blocks((f64::from(sizes[i].max(4)) / 10.0).ceil())
            .update_frequency(1.0)
            .selectivity("x", 0.3)
            .selectivity("t", 0.3)
            .finish()
            .expect("generated relation is valid");
    }
    c
}

/// The shape of one random query: a chain join (on the integer or the text
/// key), integer and text selections, and either a projection or a
/// group-by-with-aggregates on top.
#[derive(Debug, Clone)]
struct QuerySpec {
    joins: usize,
    join_on_text: bool,
    select_on: Vec<(usize, usize, i64)>,
    text_select: Vec<(usize, usize, i64)>,
    text_or: bool,
    top: usize,
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (
        0usize..=2,
        any::<bool>(),
        proptest::collection::vec((0usize..3, 0usize..3, 0i64..6), 0..3),
        proptest::collection::vec((0usize..3, 0usize..3, 0i64..6), 0..3),
        any::<bool>(),
        0usize..3,
    )
        .prop_map(
            |(joins, join_on_text, select_on, text_select, text_or, top)| QuerySpec {
                joins,
                join_on_text,
                select_on,
                text_select,
                text_or,
                top,
            },
        )
}

fn build_query(spec: &QuerySpec) -> Arc<Expr> {
    let key = if spec.join_on_text { "t" } else { "k" };
    let mut expr = Expr::base("R0");
    for i in 1..=spec.joins {
        let prev = format!("R{}", i - 1);
        let cur = format!("R{i}");
        expr = Expr::join(
            expr,
            Expr::base(cur.as_str()),
            JoinCondition::on(AttrRef::new(prev, key), AttrRef::new(cur, key)),
        );
    }
    let ops = [CompareOp::Le, CompareOp::Eq, CompareOp::Gt];
    let mut preds = Vec::new();
    for (rel, op, lit) in &spec.select_on {
        if *rel <= spec.joins {
            preds.push(Predicate::cmp(
                AttrRef::new(format!("R{rel}"), "x"),
                ops[*op],
                *lit,
            ));
        }
    }
    let mut text_preds = Vec::new();
    for (rel, op, lit) in &spec.text_select {
        if *rel <= spec.joins {
            text_preds.push(Predicate::cmp(
                AttrRef::new(format!("R{rel}"), "t"),
                ops[*op],
                Value::text(format!("v{lit}")),
            ));
        }
    }
    if spec.text_or && text_preds.len() >= 2 {
        preds.push(Predicate::or(text_preds));
    } else {
        preds.extend(text_preds);
    }
    expr = Expr::select(expr, Predicate::and(preds));
    match spec.top {
        1 => {
            let mut attrs = vec![AttrRef::new("R0", "t")];
            if spec.joins >= 1 {
                attrs.push(AttrRef::new("R1", "x"));
            }
            Expr::project(expr, attrs)
        }
        2 => Expr::aggregate(
            expr,
            [AttrRef::new("R0", "t")],
            [
                AggExpr::new(AggFunc::Sum, AttrRef::new("R0", "x"), "sx"),
                AggExpr::new(AggFunc::Min, AttrRef::new("R0", "k"), "mk"),
                AggExpr::count_star("n"),
            ],
        ),
        _ => expr,
    }
}

/// A generated database: every text column arrives dictionary-encoded.
fn dict_db(catalog: &Catalog, seed: u64) -> Database {
    Generator::with_config(GeneratorConfig {
        seed,
        scale: 1.0,
        max_rows: 60,
    })
    .database(catalog)
}

/// The same data rebuilt through the row-major constructor, which stores
/// text as plain `Text` columns — the identical plans then exercise the
/// non-dictionary page codec and kernels.
fn plain_text_db(db: &Database) -> Database {
    let mut plain = Database::new();
    for (name, t) in db.iter() {
        plain.insert_table(Table::new(
            name.clone(),
            t.attrs().to_vec(),
            t.rows().to_vec(),
        ));
    }
    plain
}

/// The sampled pool/operator budget tier.
#[derive(Debug, Clone, Copy)]
enum Budget {
    /// A zero-byte pool (every page spills at registration; every pin is a
    /// miss) and an operator budget so small every hash join and
    /// aggregation takes its spill path.
    Tiny,
    /// Half the data fits: the clock sweep constantly evicts and re-reads.
    HalfData,
    /// No limit: pages register and stay resident; no operator spills.
    Unbounded,
}

const BUDGETS: [Budget; 3] = [Budget::Tiny, Budget::HalfData, Budget::Unbounded];
const THREAD_COUNTS: [usize; 2] = [1, 4];
const PAGE_SIZES: [usize; 3] = [1, 7, 64];

/// The byte budget the battery runs at: the sampled tier, unless the
/// `MVDESIGN_MEM_BUDGET` env knob overrides it (CI's low-memory job sets a
/// value small enough to force eviction and spill on every draw).
fn effective_budget(sampled: Option<usize>) -> Option<usize> {
    match std::env::var("MVDESIGN_MEM_BUDGET") {
        Ok(v) => Some(v.parse().expect("MVDESIGN_MEM_BUDGET is a byte count")),
        Err(_) => sampled,
    }
}

/// Pages a copy of `db` into a fresh pool sized for the budget tier, and
/// the matching operator budget for the execution context.
fn paged_copy(
    db: &Database,
    budget: Budget,
    page_rows: usize,
) -> (Database, Arc<BufferPool>, Option<usize>) {
    let data_bytes: usize = db.iter().map(|(_, t)| batch_bytes(t.batch())).sum();
    let (pool_budget, op_budget) = match budget {
        Budget::Tiny => (Some(0), Some(256)),
        Budget::HalfData => (Some(data_bytes / 2), Some(data_bytes / 2)),
        Budget::Unbounded => (None, None),
    };
    let pool = BufferPool::new(effective_budget(pool_budget));
    let mut paged = db.clone();
    paged.page_out(&pool, page_rows);
    (paged, pool, effective_budget(op_budget))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole invariant: for random plans × join algorithms × key
    /// encodings × pool budgets × page sizes × thread counts, the paged
    /// engine's output equals the resident engine's **bit for bit**.
    #[test]
    fn paged_engine_is_bit_identical_to_resident(
        spec in query_strategy(),
        sizes in proptest::array::uniform3(8u32..100),
        seed in 0u64..1_000,
        budget_sel in 0usize..BUDGETS.len(),
        threads_sel in 0usize..THREAD_COUNTS.len(),
        page_sel in 0usize..PAGE_SIZES.len(),
        plain_text in any::<bool>(),
    ) {
        let catalog = make_catalog(sizes);
        let generated = dict_db(&catalog, seed);
        let db = if plain_text { plain_text_db(&generated) } else { generated };
        let q = build_query(&spec);
        let (paged, _pool, op_budget) =
            paged_copy(&db, BUDGETS[budget_sel], PAGE_SIZES[page_sel]);
        let ctx = ExecContext {
            threads: THREAD_COUNTS[threads_sel],
            morsel_rows: 16,
            mem_budget: op_budget,
        };
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let resident = execute_with(&q, &db, algo).expect("resident executes");
            let out = execute_with_context(&q, &paged, algo, &ctx)
                .expect("paged engine executes");
            prop_assert_eq!(
                resident.batch(),
                out.batch(),
                "bit-identity broken under {:?} at {:?}/{} pages with {:?} for {:?}",
                algo,
                BUDGETS[budget_sel],
                PAGE_SIZES[page_sel],
                ctx,
                spec
            );
        }
    }

    /// The I/O simulator's *modelled* charges are storage-invariant: the
    /// per-operator read/written blocks over a paged database equal the
    /// resident report exactly, whatever the pool measured. Only the
    /// `pool_misses` field may differ — and over a resident database it is
    /// always zero.
    #[test]
    fn paged_iosim_modelled_charges_match_resident(
        spec in query_strategy(),
        sizes in proptest::array::uniform3(8u32..100),
        seed in 0u64..500,
        bf in 1u32..40,
        budget_sel in 0usize..BUDGETS.len(),
        page_sel in 0usize..PAGE_SIZES.len(),
    ) {
        let catalog = make_catalog(sizes);
        let db = dict_db(&catalog, seed);
        let q = build_query(&spec);
        let (paged, _pool, op_budget) =
            paged_copy(&db, BUDGETS[budget_sel], PAGE_SIZES[page_sel]);
        let ctx = ExecContext { threads: 1, morsel_rows: 16, mem_budget: op_budget };
        let (rt, rio) = measure(&q, &db, f64::from(bf)).expect("resident iosim");
        let (pt, pio) = measure_paged(&q, &paged, f64::from(bf), &ctx)
            .expect("paged iosim");
        prop_assert_eq!(rt.batch(), pt.batch());
        prop_assert_eq!(rio.total(), pio.total());
        prop_assert_eq!(rio.blocks_read, pio.blocks_read);
        prop_assert_eq!(rio.blocks_written, pio.blocks_written);
        let resident_ops = rio.per_operator();
        for (op, charge) in pio.per_operator() {
            let r = resident_ops.get(op).expect("same operator set");
            prop_assert_eq!(r.read, charge.read, "modelled reads moved for {}", op);
            prop_assert_eq!(r.written, charge.written, "modelled writes moved for {}", op);
            prop_assert_eq!(r.pool_misses, 0, "resident run measured a miss");
        }
    }
}

/// A deterministic fixture big enough that a 1 KiB operator budget forces
/// the Grace hash join (5 500 × 16-byte key records) and spilling
/// aggregation (5 000 × 40-byte records), over a zero-byte pool where every
/// pin re-reads its page from spill: the fully out-of-core path must match
/// the fully resident path on every algorithm and thread count.
#[test]
fn spilled_join_and_aggregate_match_resident() {
    let mut db = Database::new();
    db.insert_table(Table::new(
        "L",
        [
            AttrRef::new("L", "id"),
            AttrRef::new("L", "k"),
            AttrRef::new("L", "g"),
        ],
        (0..5_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 37), Value::Int(i % 11)])
            .collect(),
    ));
    db.insert_table(Table::new(
        "R",
        [AttrRef::new("R", "k")],
        (0..500).map(|j| vec![Value::Int(j % 37)]).collect(),
    ));
    let q = Expr::aggregate(
        Expr::join(
            Expr::base("L"),
            Expr::base("R"),
            JoinCondition::on(AttrRef::new("L", "k"), AttrRef::new("R", "k")),
        ),
        [AttrRef::new("L", "g")],
        [
            AggExpr::new(AggFunc::Sum, AttrRef::new("L", "id"), "total"),
            AggExpr::new(AggFunc::Min, AttrRef::new("L", "id"), "lo"),
            AggExpr::count_star("n"),
        ],
    );
    let pool = BufferPool::new(Some(0));
    let mut paged = db.clone();
    paged.page_out(&pool, 64);
    for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
        let resident = execute_with(&q, &db, algo).expect("resident");
        for threads in [1, 4] {
            let ctx = ExecContext {
                threads,
                morsel_rows: 64,
                mem_budget: Some(1024),
            };
            let out = execute_with_context(&q, &paged, algo, &ctx).expect("paged");
            assert_eq!(
                resident.batch(),
                out.batch(),
                "{algo:?} differs at {threads} thread(s)"
            );
        }
    }
    let stats = pool.stats();
    assert!(stats.evictions > 0, "a zero-byte pool must evict");
    assert!(stats.misses > 0, "a zero-byte pool must re-read pages");
    assert!(
        stats.spill_bytes > 0,
        "evicted pages must hit the spill file"
    );
}

/// Re-running the same plan over the same paged database (now with warm —
/// then re-evicted — pages) changes nothing: residency history is
/// invisible in results.
#[test]
fn repeated_runs_over_an_evicting_pool_are_identical() {
    let catalog = make_catalog([90, 70, 50]);
    let db = dict_db(&catalog, 7);
    let (paged, pool, op_budget) = paged_copy(&db, Budget::HalfData, 7);
    let q = build_query(&QuerySpec {
        joins: 2,
        join_on_text: true,
        select_on: vec![(0, 0, 3)],
        text_select: vec![(1, 1, 2)],
        text_or: false,
        top: 2,
    });
    let ctx = ExecContext {
        threads: 1,
        morsel_rows: 16,
        mem_budget: op_budget,
    };
    let first = execute_with_context(&q, &paged, JoinAlgo::Hash, &ctx).expect("first run");
    let evictions_after_first = pool.stats().evictions;
    for _ in 0..3 {
        let again = execute_with_context(&q, &paged, JoinAlgo::Hash, &ctx).expect("re-run");
        assert_eq!(first.batch(), again.batch(), "rerun differs");
    }
    // Unless the env knob lifted the budget, the half-data pool kept
    // evicting across reruns — the identity above covers warm *and* cold.
    if std::env::var("MVDESIGN_MEM_BUDGET").is_err() {
        assert!(
            pool.stats().evictions >= evictions_after_first,
            "eviction counter went backwards"
        );
    }
}
