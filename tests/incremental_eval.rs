//! Equivalence guarantees for the memoized/parallel search engine: the
//! incremental evaluator must agree with full evaluation on arbitrary flip
//! sequences, and every parallelised algorithm must produce the same answer
//! at any thread count.

use std::collections::BTreeSet;

use proptest::prelude::*;

use mvdesign::core::{
    evaluate, evaluate_set, generate_mvpps, AnnotatedMvpp, Designer, DesignerConfig,
    ExhaustiveSelection, GenerateConfig, GeneticSelection, IncrementalEvaluator, MaintenanceMode,
    NodeSet, SelectionAlgorithm, UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::optimizer::Planner;
use mvdesign::workload::{Scenario, StarSchema, StarSchemaConfig};

fn star(seed: u64, queries: usize) -> Scenario {
    StarSchema::with_config(StarSchemaConfig {
        seed,
        queries,
        dimensions: 4,
        ..StarSchemaConfig::default()
    })
    .scenario()
}

fn annotate(scenario: &Scenario) -> AnnotatedMvpp {
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Analytic,
        PaperCostModel::default(),
    );
    let mvpp = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )
    .remove(0);
    AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any flip sequence leaves the incremental evaluator agreeing with a
    /// full `evaluate` of the same frontier, in both maintenance modes.
    #[test]
    fn incremental_flips_agree_with_full_evaluate(
        seed in 0_u64..1_000,
        flips in proptest::collection::vec(0_usize..64, 1..40),
    ) {
        let scenario = star(seed, 6);
        let a = annotate(&scenario);
        let interior = a.mvpp().interior();
        for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
            let mut eval = IncrementalEvaluator::new(&a, mode);
            let mut frontier: BTreeSet<_> = BTreeSet::new();
            for f in &flips {
                let v = interior[f % interior.len()];
                if !frontier.remove(&v) {
                    frontier.insert(v);
                }
                let incremental = eval.flip(v);
                let full = evaluate(&a, &frontier, mode);
                prop_assert!(
                    (incremental - full.total).abs() <= 1e-9,
                    "flip diverged: incremental {incremental} vs full {}",
                    full.total
                );
                prop_assert_eq!(eval.breakdown(), full);
            }
        }
    }

    /// Dense-set evaluation is interchangeable with the `BTreeSet` API.
    #[test]
    fn evaluate_set_matches_evaluate(
        seed in 0_u64..1_000,
        picks in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 64..=64_usize),
    ) {
        let scenario = star(seed, 5);
        let a = annotate(&scenario);
        let chosen: BTreeSet<_> = a
            .mvpp()
            .interior()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| picks[i % picks.len()])
            .map(|(_, v)| v)
            .collect();
        let dense = NodeSet::from_ids(a.mvpp().len(), chosen.iter().copied());
        for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
            let via_btree = evaluate(&a, &chosen, mode);
            let via_set = evaluate_set(&a, &dense, mode);
            prop_assert_eq!(via_btree, via_set);
        }
    }

    /// The exhaustive search returns the identical subset at any thread
    /// count (Gray-code partitioning is deterministic).
    #[test]
    fn exhaustive_is_thread_count_invariant(seed in 0_u64..500) {
        let scenario = star(seed, 6);
        let a = annotate(&scenario);
        let sequential = ExhaustiveSelection { max_nodes: 10, parallelism: 1 };
        let parallel = ExhaustiveSelection { max_nodes: 10, parallelism: 4 };
        let mode = MaintenanceMode::SharedRecompute;
        prop_assert_eq!(sequential.select(&a, mode), parallel.select(&a, mode));
    }

    /// The genetic algorithm evolves the same population — and picks the
    /// same set — whether fitness is scored on one thread or many.
    #[test]
    fn genetic_is_thread_count_invariant(seed in 0_u64..500) {
        let scenario = star(seed, 6);
        let a = annotate(&scenario);
        let base = GeneticSelection {
            population: 12,
            generations: 8,
            seed,
            ..GeneticSelection::default()
        };
        let sequential = GeneticSelection { parallelism: 1, ..base };
        let parallel = GeneticSelection { parallelism: 4, ..base };
        let mode = MaintenanceMode::SharedRecompute;
        prop_assert_eq!(sequential.select(&a, mode), parallel.select(&a, mode));
    }
}

/// The end-to-end designer fans candidate MVPPs across threads; the chosen
/// design, its cost breakdown, and the per-candidate costs must not depend
/// on the thread count.
#[test]
fn designer_is_thread_count_invariant() {
    for seed in [1_u64, 7, 99] {
        let scenario = star(seed, 8);
        let run = |parallelism: usize| {
            let designer = Designer::with_config(DesignerConfig {
                estimation: EstimationMode::Analytic,
                generate: GenerateConfig { max_rotations: 4 },
                parallelism,
                ..DesignerConfig::default()
            });
            designer
                .design(&scenario.catalog, &scenario.workload)
                .expect("star workload designs cleanly")
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.materialized, par.materialized, "seed {seed}");
        assert_eq!(seq.cost, par.cost, "seed {seed}");
        assert_eq!(seq.candidate_index, par.candidate_index, "seed {seed}");
        assert_eq!(seq.candidate_costs, par.candidate_costs, "seed {seed}");
        assert_eq!(seq.trace, par.trace, "seed {seed}");
    }
}

/// Sanity: memoization actually kicks in — a flip cycle revisits cached
/// frontiers without re-walking any query.
#[test]
fn incremental_memoization_reuses_walks() {
    let scenario = star(3, 8);
    let a = annotate(&scenario);
    let mut eval = IncrementalEvaluator::new(&a, MaintenanceMode::SharedRecompute);
    let interior = a.mvpp().interior();
    for v in &interior {
        eval.flip(*v);
        eval.flip(*v);
    }
    let walks = eval.walks();
    for v in &interior {
        eval.flip(*v);
        eval.flip(*v);
    }
    assert_eq!(eval.walks(), walks, "repeat cycle must be fully memoized");
}
