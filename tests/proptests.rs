//! Property-based tests over randomly generated catalogs, queries and data:
//! rewrites preserve semantics, estimates stay well-formed, and the greedy
//! never beats the exhaustive optimum.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use mvdesign::algebra::{AttrRef, CompareOp, Expr, JoinCondition, Predicate};
use mvdesign::catalog::{AttrType, Catalog};
use mvdesign::core::{
    evaluate, AnnotatedMvpp, ExhaustiveSelection, GreedySelection, MaintenanceMode, Mvpp,
    SelectionAlgorithm, UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::engine::{execute, execute_with, Database, Generator, GeneratorConfig, JoinAlgo};
use mvdesign::optimizer::{push_selections, Planner};

/// A three-relation catalog whose statistics are drawn from the strategy.
fn make_catalog(sizes: [u32; 3], sel: f64) -> Catalog {
    let mut c = Catalog::new();
    for (i, name) in ["R0", "R1", "R2"].iter().enumerate() {
        c.relation(*name)
            .attr("k", AttrType::Int)
            .attr("x", AttrType::Int)
            .attr("t", AttrType::Text)
            .records(f64::from(sizes[i].max(4)))
            .blocks((f64::from(sizes[i].max(4)) / 10.0).ceil())
            .update_frequency(1.0)
            .selectivity("x", sel)
            .selectivity("t", sel)
            .finish()
            .expect("generated relation is valid");
    }
    for (a, b) in [("R0", "R1"), ("R1", "R2")] {
        let d = f64::from(sizes[0].max(sizes[1]).max(8));
        c.set_join_selectivity(AttrRef::new(a, "k"), AttrRef::new(b, "k"), 1.0 / d)
            .expect("generated join selectivity is valid");
    }
    c
}

/// Random SPJ expression over the three relations: a chain join with
/// optional selections and a projection.
#[derive(Debug, Clone)]
struct QuerySpec {
    joins: usize,                 // 0..=2 extra relations
    select_on: Vec<(usize, i64)>, // (relation index, literal)
    project: bool,
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (
        0usize..=2,
        proptest::collection::vec((0usize..3, 0i64..6), 0..3),
        any::<bool>(),
    )
        .prop_map(|(joins, select_on, project)| QuerySpec {
            joins,
            select_on,
            project,
        })
}

fn build_query(spec: &QuerySpec) -> Arc<Expr> {
    let mut expr = Expr::base("R0");
    for i in 1..=spec.joins {
        let prev = format!("R{}", i - 1);
        let cur = format!("R{i}");
        expr = Expr::join(
            expr,
            Expr::base(cur.as_str()),
            JoinCondition::on(AttrRef::new(prev, "k"), AttrRef::new(cur, "k")),
        );
    }
    let mut preds = Vec::new();
    for (rel, lit) in &spec.select_on {
        if *rel <= spec.joins {
            preds.push(Predicate::cmp(
                AttrRef::new(format!("R{rel}"), "x"),
                CompareOp::Le,
                *lit,
            ));
        }
    }
    expr = Expr::select(expr, Predicate::and(preds));
    if spec.project {
        let mut attrs = vec![AttrRef::new("R0", "t")];
        if spec.joins >= 1 {
            attrs.push(AttrRef::new("R1", "x"));
        }
        expr = Expr::project(expr, attrs);
    }
    expr
}

fn small_db(catalog: &Catalog, seed: u64) -> Database {
    Generator::with_config(GeneratorConfig {
        seed,
        scale: 1.0,
        max_rows: 60,
    })
    .database(catalog)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn selection_pushdown_preserves_results(
        spec in query_strategy(),
        sizes in proptest::array::uniform3(8u32..200),
        seed in 0u64..1_000,
    ) {
        let catalog = make_catalog(sizes, 0.3);
        let db = small_db(&catalog, seed);
        let q = build_query(&spec);
        let pushed = push_selections(&q);
        let a = execute(&q, &db).expect("original executes").canonicalized();
        let b = execute(&pushed, &db).expect("pushed executes").canonicalized();
        prop_assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn full_optimizer_preserves_results(
        spec in query_strategy(),
        sizes in proptest::array::uniform3(8u32..200),
        seed in 0u64..1_000,
    ) {
        let catalog = make_catalog(sizes, 0.3);
        let db = small_db(&catalog, seed);
        let q = build_query(&spec);
        let est = CostEstimator::new(&catalog, EstimationMode::Analytic, PaperCostModel::default());
        let opt = Planner::new().optimize(&q, &est);
        prop_assert!(est.tree_cost(&opt) <= est.tree_cost(&q) + 1e-9);
        let a = execute(&q, &db).expect("original executes").canonicalized();
        let b = execute(&opt, &db).expect("optimized executes").canonicalized();
        prop_assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn estimates_are_finite_and_monotone_under_selection(
        spec in query_strategy(),
        sizes in proptest::array::uniform3(8u32..5_000),
        sel in 0.01f64..1.0,
    ) {
        let catalog = make_catalog(sizes, sel);
        let est = CostEstimator::new(&catalog, EstimationMode::Analytic, PaperCostModel::default());
        let q = build_query(&spec);
        let stats = est.stats(&q);
        prop_assert!(stats.records.is_finite() && stats.records >= 0.0);
        prop_assert!(stats.blocks.is_finite() && stats.blocks >= 0.0);
        // Adding a selection never increases the estimate.
        let filtered = Expr::select(
            Arc::clone(&q),
            Predicate::cmp(AttrRef::new("R0", "t"), CompareOp::Eq, "v0"),
        );
        // (Only valid if R0.t is still visible — skip when projected away.)
        if !spec.project {
            prop_assert!(est.stats(&filtered).records <= stats.records + 1e-9);
        }
        prop_assert!(est.tree_cost(&q).is_finite());
    }

    #[test]
    fn greedy_never_beats_exhaustive(
        sizes in proptest::array::uniform3(8u32..2_000),
        fq in proptest::array::uniform3(0.1f64..50.0),
        sel in 0.05f64..0.9,
    ) {
        let catalog = make_catalog(sizes, sel);
        let est = CostEstimator::new(&catalog, EstimationMode::Analytic, PaperCostModel::default());
        // Three overlapping queries over the chain join.
        let j01 = Expr::join(
            Expr::base("R0"),
            Expr::base("R1"),
            JoinCondition::on(AttrRef::new("R0", "k"), AttrRef::new("R1", "k")),
        );
        let j012 = Expr::join(
            Arc::clone(&j01),
            Expr::base("R2"),
            JoinCondition::on(AttrRef::new("R1", "k"), AttrRef::new("R2", "k")),
        );
        let filtered = Expr::select(
            Arc::clone(&j01),
            Predicate::cmp(AttrRef::new("R0", "x"), CompareOp::Le, 2),
        );
        let mut mvpp = Mvpp::new();
        mvpp.insert_query("Q1", fq[0], &j01);
        mvpp.insert_query("Q2", fq[1], &j012);
        mvpp.insert_query("Q3", fq[2], &filtered);
        let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
        let mode = MaintenanceMode::SharedRecompute;
        let greedy = evaluate(&a, &GreedySelection::new().select(&a, mode), mode).total;
        let optimum = evaluate(&a, &ExhaustiveSelection::default().select(&a, mode), mode).total;
        prop_assert!(greedy + 1e-6 >= optimum, "greedy {} beat optimum {}", greedy, optimum);
        // And the optimum is no worse than the trivial strategies.
        let none = evaluate(&a, &BTreeSet::new(), mode).total;
        prop_assert!(optimum <= none + 1e-6);
    }

    #[test]
    fn evaluation_is_monotone_in_query_frequency(
        sizes in proptest::array::uniform3(8u32..2_000),
        fq in 0.1f64..50.0,
    ) {
        let catalog = make_catalog(sizes, 0.3);
        let est = CostEstimator::new(&catalog, EstimationMode::Analytic, PaperCostModel::default());
        let j01 = Expr::join(
            Expr::base("R0"),
            Expr::base("R1"),
            JoinCondition::on(AttrRef::new("R0", "k"), AttrRef::new("R1", "k")),
        );
        let build = |f: f64| {
            let mut mvpp = Mvpp::new();
            mvpp.insert_query("Q", f, &j01);
            AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max)
        };
        let lo = build(fq);
        let hi = build(fq * 2.0);
        let mode = MaintenanceMode::SharedRecompute;
        for m in [BTreeSet::new(), lo.mvpp().interior().into_iter().collect::<BTreeSet<_>>()] {
            prop_assert!(
                evaluate(&hi, &m, mode).total >= evaluate(&lo, &m, mode).total - 1e-9
            );
        }
    }

    #[test]
    fn predicate_normalisation_is_stable_under_commutation(
        lits in proptest::collection::vec(0i64..5, 1..4),
    ) {
        let preds: Vec<Predicate> = lits
            .iter()
            .map(|l| Predicate::cmp(AttrRef::new("R0", "x"), CompareOp::Eq, *l))
            .collect();
        let mut reversed = preds.clone();
        reversed.reverse();
        prop_assert_eq!(Predicate::and(preds.clone()), Predicate::and(reversed.clone()));
        prop_assert_eq!(Predicate::or(preds), Predicate::or(reversed));
    }

    #[test]
    fn selectivity_is_always_a_probability(
        lits in proptest::collection::vec(0i64..5, 1..5),
        sel in 0.0f64..1.0,
    ) {
        let catalog = make_catalog([100, 100, 100], sel);
        let preds: Vec<Predicate> = lits
            .iter()
            .map(|l| Predicate::cmp(AttrRef::new("R0", "x"), CompareOp::Eq, *l))
            .collect();
        for p in [Predicate::and(preds.clone()), Predicate::or(preds)] {
            let s = p.selectivity(&catalog);
            prop_assert!((0.0..=1.0).contains(&s), "selectivity {} of {}", s, p);
        }
    }

    #[test]
    fn all_join_algorithms_agree_on_random_data(
        spec in query_strategy(),
        sizes in proptest::array::uniform3(8u32..150),
        seed in 0u64..500,
    ) {
        let catalog = make_catalog(sizes, 0.3);
        let db = small_db(&catalog, seed);
        let q = build_query(&spec);
        let nested = execute_with(&q, &db, JoinAlgo::NestedLoop)
            .expect("nested executes")
            .canonicalized();
        let hash = execute_with(&q, &db, JoinAlgo::Hash)
            .expect("hash executes")
            .canonicalized();
        let merge = execute_with(&q, &db, JoinAlgo::SortMerge)
            .expect("merge executes")
            .canonicalized();
        prop_assert_eq!(nested.rows(), hash.rows());
        prop_assert_eq!(nested.rows(), merge.rows());
    }

    #[test]
    fn rendered_catalogs_reparse_identically(
        sizes in proptest::array::uniform3(8u32..5_000),
        sel in 0.01f64..1.0,
        fu in 0.0f64..20.0,
    ) {
        let mut catalog = make_catalog(sizes, sel);
        catalog.set_update_frequency("R0", fu).expect("known relation");
        let text = mvdesign::workload::render_catalog(&catalog);
        let reparsed = mvdesign::workload::parse_scenario(&format!(
            "{text}\nquery q 1 {{\nSELECT t FROM R0\n}}"
        ))
        .expect("rendered catalog reparses");
        prop_assert_eq!(catalog, reparsed.catalog);
    }

    #[test]
    fn view_rewrite_preserves_results_on_random_queries(
        spec in query_strategy(),
        sizes in proptest::array::uniform3(8u32..150),
        seed in 0u64..500,
    ) {
        use mvdesign::core::ViewCatalog;
        use mvdesign::engine::materialize_view;
        let catalog = make_catalog(sizes, 0.3);
        let mut db = small_db(&catalog, seed);
        let q = build_query(&spec);
        // Register every join subexpression of the query as a view.
        let mut views = ViewCatalog::new();
        let mut counter = 0;
        mvdesign::algebra::postorder(&q, &mut |n| {
            if matches!(&**n, Expr::Join { .. }) {
                counter += 1;
                views.register(format!("view{counter}"), Arc::clone(n));
            }
        });
        for (name, definition) in views.views().to_vec() {
            materialize_view(name, &definition, &mut db).expect("view materializes");
        }
        let direct = execute(&q, &db).expect("direct executes").canonicalized();
        let routed = execute(&views.rewrite(&q), &db)
            .expect("routed executes")
            .canonicalized();
        prop_assert_eq!(direct.rows(), routed.rows());
    }

    #[test]
    fn dsl_parser_never_panics_on_arbitrary_text(
        text in "[ -~\\n]{0,400}",
    ) {
        // Any byte soup must produce Ok(_) or a structured error, never a
        // panic.
        let _ = mvdesign::workload::parse_scenario(&text);
    }

    #[test]
    fn sql_parser_never_panics_on_arbitrary_text(
        text in "[ -~]{0,200}",
    ) {
        let catalog = make_catalog([50, 50, 50], 0.3);
        let _ = mvdesign::algebra::parse_query_with(&text, &catalog);
    }

    #[test]
    fn aggregate_estimates_never_exceed_input_cardinality(
        sizes in proptest::array::uniform3(8u32..5_000),
        sel in 0.01f64..1.0,
    ) {
        use mvdesign::algebra::{AggExpr, AggFunc};
        let catalog = make_catalog(sizes, sel);
        let est = CostEstimator::new(&catalog, EstimationMode::Analytic, PaperCostModel::default());
        let join = Expr::join(
            Expr::base("R0"),
            Expr::base("R1"),
            JoinCondition::on(AttrRef::new("R0", "k"), AttrRef::new("R1", "k")),
        );
        let agg = Expr::aggregate(
            Arc::clone(&join),
            [AttrRef::new("R0", "t")],
            [AggExpr::new(AggFunc::Sum, AttrRef::new("R1", "x"), "s")],
        );
        let input = est.stats(&join);
        let output = est.stats(&agg);
        prop_assert!(output.records <= input.records + 1e-9);
        prop_assert!(output.records >= 0.0);
        prop_assert!(est.op_cost(&agg).is_finite());
    }

    #[test]
    fn break_even_is_consistent_with_greedy_acceptance(
        sizes in proptest::array::uniform3(64u32..5_000),
        fq in 1.0f64..100.0,
    ) {
        use mvdesign::core::{break_even_update_weight, AnnotatedMvpp, Mvpp, UpdateWeighting};
        let catalog = make_catalog(sizes, 0.3);
        let est = CostEstimator::new(&catalog, EstimationMode::Analytic, PaperCostModel::default());
        let join = Expr::join(
            Expr::base("R0"),
            Expr::base("R1"),
            JoinCondition::on(AttrRef::new("R0", "k"), AttrRef::new("R1", "k")),
        );
        let mut mvpp = Mvpp::new();
        mvpp.insert_query("Q", fq, &join);
        let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
        let root = a.mvpp().roots()[0].2;
        let ustar = break_even_update_weight(&a, root);
        // The catalog's fu is 1.0; the Figure-9 weight is positive exactly
        // when 1.0 is below a (coarser, scan-free) version of U*. The
        // refined U* can only be larger.
        let w = a.annotation(root).weight;
        if w > 0.0 {
            prop_assert!(ustar >= 1.0, "w>0 but U*={} < fu", ustar);
        }
    }
}
