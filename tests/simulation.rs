//! The ultimate end-to-end validation: simulate operating periods on the
//! execution engine and compare strategies by *observed* block I/O. The
//! paper's claim — the MVPP design beats both extremes — must hold on
//! measured numbers, not just on the estimator's.

use std::sync::Arc;

use mvdesign::core::ViewCatalog;
use mvdesign::engine::{Generator, GeneratorConfig};
use mvdesign::prelude::Designer;
use mvdesign::warehouse::{measured_design_cost, measured_period_cost, MeasuredPeriod};
use mvdesign::workload::paper_example;

fn strategies() -> (MeasuredPeriod, MeasuredPeriod, MeasuredPeriod) {
    let scenario = paper_example();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("designs");
    let db = Generator::with_config(GeneratorConfig {
        seed: 4242,
        scale: 0.004,
        max_rows: 400,
    })
    .database(&scenario.catalog);

    // Nothing materialized: queries recompute from base tables.
    let none = measured_period_cost(&scenario.workload, &ViewCatalog::new(), &db, 10.0)
        .expect("no-view period runs");

    // The designer's choice.
    let designed = measured_design_cost(&design, &db, 10.0).expect("design period runs");

    // Materialize every (merged) query result.
    let mut all_views = ViewCatalog::new();
    for (name, _, root) in design.mvpp.mvpp().roots() {
        all_views.register(
            format!("q_{name}"),
            Arc::clone(design.mvpp.mvpp().node(*root).expr()),
        );
    }
    // Measure against the merged plans so every root hits its stored copy.
    let mut query_io = 0.0;
    let mut working = db.clone();
    let mut maintenance_io = 0.0;
    for (vname, definition) in all_views.views() {
        let (result, io) =
            mvdesign::engine::measure(definition, &working, 10.0).expect("view computes");
        maintenance_io += io.total();
        working.insert_table(mvdesign::engine::Table::new(
            vname.clone(),
            result.attrs().to_vec(),
            result.into_rows(),
        ));
    }
    for (_, fq, root) in design.mvpp.mvpp().roots() {
        let merged = design.mvpp.mvpp().node(*root).expr();
        let routed = all_views.rewrite(merged);
        let (_, io) = mvdesign::engine::measure(&routed, &working, 10.0).expect("query runs");
        query_io += fq * io.total();
    }
    let all = MeasuredPeriod {
        query_io,
        maintenance_io,
        total_io: query_io + maintenance_io,
    };
    (none, designed, all)
}

#[test]
fn measured_io_confirms_the_design_beats_no_materialization() {
    let (none, designed, _) = strategies();
    assert!(
        designed.total_io < none.total_io,
        "design {} ≥ none {}",
        designed.total_io,
        none.total_io
    );
    // And by a wide margin: the estimator predicted ≈5×; allow ≥2× measured.
    assert!(
        none.total_io / designed.total_io > 2.0,
        "ratio {:.2}",
        none.total_io / designed.total_io
    );
}

#[test]
fn measured_io_splits_between_queries_and_maintenance_sensibly() {
    let (none, designed, all) = strategies();
    // No views: zero maintenance, all cost in queries.
    assert_eq!(none.maintenance_io, 0.0);
    assert!(none.query_io > 0.0);
    // The design trades query I/O for maintenance I/O.
    assert!(designed.maintenance_io > 0.0);
    assert!(designed.query_io < none.query_io);
    // Materialize-all has the cheapest queries of the three.
    assert!(all.query_io <= designed.query_io);
    assert!(all.query_io < none.query_io);
}

#[test]
fn measured_ordering_matches_estimated_ordering() {
    // The estimator said: design < all-queries < none (on the paper
    // example). Measured I/O on generated data must preserve that ordering.
    let (none, designed, all) = strategies();
    assert!(
        designed.total_io <= all.total_io * 1.05,
        "design {} vs all {}",
        designed.total_io,
        all.total_io
    );
    assert!(
        all.total_io < none.total_io,
        "all {} vs none {}",
        all.total_io,
        none.total_io
    );
}
