//! Differential tests for the columnar batch engine: on random
//! select-project-join-aggregate expressions over randomly generated data,
//! the batch kernels must produce exactly the bag of tuples the preserved
//! tuple-at-a-time reference engine produces — for every join algorithm.
//!
//! A fixture-based regression pins the I/O simulator's block totals, which
//! must not move under per-batch accounting (every charge is a function of
//! row counts alone).

use std::sync::Arc;

use proptest::prelude::*;

use mvdesign::algebra::{
    AggExpr, AggFunc, AttrRef, CompareOp, Expr, JoinCondition, Predicate, Value,
};
use mvdesign::catalog::{AttrType, Catalog};
use mvdesign::engine::{
    execute_with, measure, row_reference, selection_mask, selection_mask_full, Database, Generator,
    GeneratorConfig, JoinAlgo, Table,
};

/// A three-relation catalog with an integer join key, an integer payload and
/// a low-cardinality text attribute per relation.
fn make_catalog(sizes: [u32; 3]) -> Catalog {
    let mut c = Catalog::new();
    for (i, name) in ["R0", "R1", "R2"].iter().enumerate() {
        c.relation(*name)
            .attr("k", AttrType::Int)
            .attr("x", AttrType::Int)
            .attr("t", AttrType::Text)
            .records(f64::from(sizes[i].max(4)))
            .blocks((f64::from(sizes[i].max(4)) / 10.0).ceil())
            .update_frequency(1.0)
            .selectivity("x", 0.3)
            .selectivity("t", 0.3)
            .finish()
            .expect("generated relation is valid");
    }
    c
}

/// The shape of one random query: a chain join (on the integer or the
/// dictionary-encoded text key), integer and text selections with varying
/// comparison operators (text predicates optionally as one disjunction),
/// and either a projection or a group-by-with-aggregates on top.
#[derive(Debug, Clone)]
struct QuerySpec {
    joins: usize,                          // 0..=2 extra relations
    join_on_text: bool,                    // join on `t` instead of `k`
    select_on: Vec<(usize, usize, i64)>,   // (relation, op index, literal)
    text_select: Vec<(usize, usize, i64)>, // (relation, op index, "v{lit}")
    text_or: bool,                         // OR the text predicates together
    top: usize,                            // 0 = nothing, 1 = project, 2 = aggregate
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (
        0usize..=2,
        any::<bool>(),
        proptest::collection::vec((0usize..3, 0usize..3, 0i64..6), 0..3),
        proptest::collection::vec((0usize..3, 0usize..3, 0i64..6), 0..3),
        any::<bool>(),
        0usize..3,
    )
        .prop_map(
            |(joins, join_on_text, select_on, text_select, text_or, top)| QuerySpec {
                joins,
                join_on_text,
                select_on,
                text_select,
                text_or,
                top,
            },
        )
}

fn build_query(spec: &QuerySpec) -> Arc<Expr> {
    let key = if spec.join_on_text { "t" } else { "k" };
    let mut expr = Expr::base("R0");
    for i in 1..=spec.joins {
        let prev = format!("R{}", i - 1);
        let cur = format!("R{i}");
        expr = Expr::join(
            expr,
            Expr::base(cur.as_str()),
            JoinCondition::on(AttrRef::new(prev, key), AttrRef::new(cur, key)),
        );
    }
    let ops = [CompareOp::Le, CompareOp::Eq, CompareOp::Gt];
    let mut preds = Vec::new();
    for (rel, op, lit) in &spec.select_on {
        if *rel <= spec.joins {
            preds.push(Predicate::cmp(
                AttrRef::new(format!("R{rel}"), "x"),
                ops[*op],
                *lit,
            ));
        }
    }
    // Text predicates hit the dictionary-encoded columns; with `text_or`
    // they become one disjunction (the paper's pushed-down disjunctive
    // selects), exercising the OR side of selection-vector evaluation.
    let mut text_preds = Vec::new();
    for (rel, op, lit) in &spec.text_select {
        if *rel <= spec.joins {
            text_preds.push(Predicate::cmp(
                AttrRef::new(format!("R{rel}"), "t"),
                ops[*op],
                Value::text(format!("v{lit}")),
            ));
        }
    }
    if spec.text_or && text_preds.len() >= 2 {
        preds.push(Predicate::or(text_preds));
    } else {
        preds.extend(text_preds);
    }
    expr = Expr::select(expr, Predicate::and(preds));
    match spec.top {
        1 => {
            let mut attrs = vec![AttrRef::new("R0", "t")];
            if spec.joins >= 1 {
                attrs.push(AttrRef::new("R1", "x"));
            }
            Expr::project(expr, attrs)
        }
        2 => Expr::aggregate(
            expr,
            [AttrRef::new("R0", "t")],
            [
                AggExpr::new(AggFunc::Sum, AttrRef::new("R0", "x"), "sx"),
                AggExpr::new(AggFunc::Min, AttrRef::new("R0", "k"), "mk"),
                AggExpr::count_star("n"),
            ],
        ),
        _ => expr,
    }
}

fn small_db(catalog: &Catalog, seed: u64) -> Database {
    Generator::with_config(GeneratorConfig {
        seed,
        scale: 1.0,
        max_rows: 60,
    })
    .database(catalog)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The batch engine and the row-reference oracle agree — as bags, for
    /// every join algorithm — on random SPJ + aggregate plans.
    #[test]
    fn batch_matches_row_reference_on_random_plans(
        spec in query_strategy(),
        sizes in proptest::array::uniform3(8u32..150),
        seed in 0u64..1_000,
    ) {
        let catalog = make_catalog(sizes);
        let db = small_db(&catalog, seed);
        let q = build_query(&spec);
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let batch = execute_with(&q, &db, algo)
                .expect("batch engine executes")
                .canonicalized();
            let reference = row_reference::execute_with(&q, &db, algo)
                .expect("row reference executes")
                .canonicalized();
            prop_assert_eq!(
                batch.rows(),
                reference.rows(),
                "bag mismatch under {:?} for {:?}",
                algo,
                spec
            );
        }
    }

    /// The I/O simulator's result table carries exactly the rows the batch
    /// engine computes, regardless of the blocking factor.
    #[test]
    fn iosim_result_matches_engine_on_random_plans(
        spec in query_strategy(),
        sizes in proptest::array::uniform3(8u32..100),
        seed in 0u64..500,
        bf in 1u32..40,
    ) {
        let catalog = make_catalog(sizes);
        let db = small_db(&catalog, seed);
        let q = build_query(&spec);
        let (measured, report) = measure(&q, &db, f64::from(bf)).expect("iosim executes");
        let direct = execute_with(&q, &db, JoinAlgo::NestedLoop).expect("engine executes");
        prop_assert_eq!(report.rows_out, direct.len());
        prop_assert_eq!(
            measured.canonicalized().rows(),
            direct.canonicalized().rows()
        );
        prop_assert!(report.total() >= 0.0 && report.total().is_finite());
    }

    /// Selection-vector short-circuiting must produce bit-identical masks
    /// to full-width evaluation on random conjunctive/disjunctive
    /// predicates over batches large enough to trigger the switch.
    #[test]
    fn short_circuit_masks_are_bit_identical(
        rows in 8u32..600,
        seed in 0u64..1_000,
        int_preds in proptest::collection::vec((0usize..3, 0i64..6), 0..4),
        text_preds in proptest::collection::vec((0usize..3, 0i64..6), 0..4),
        use_or in any::<bool>(),
    ) {
        let catalog = make_catalog([rows, 8, 8]);
        let db = Generator::with_config(GeneratorConfig {
            seed,
            scale: 1.0,
            max_rows: 600,
        })
        .database(&catalog);
        let ops = [CompareOp::Le, CompareOp::Eq, CompareOp::Gt];
        let mut preds: Vec<Predicate> = int_preds
            .iter()
            .map(|(op, lit)| Predicate::cmp(AttrRef::new("R0", "x"), ops[*op], *lit))
            .collect();
        let texts: Vec<Predicate> = text_preds
            .iter()
            .map(|(op, lit)| {
                Predicate::cmp(AttrRef::new("R0", "t"), ops[*op], Value::text(format!("v{lit}")))
            })
            .collect();
        if use_or && texts.len() >= 2 {
            preds.push(Predicate::or(texts));
        } else {
            preds.extend(texts);
        }
        let p = Predicate::and(preds);
        let batch = db.table("R0").expect("table generated").batch();
        let fast = selection_mask(&p, batch).expect("adaptive mask evaluates");
        let full = selection_mask_full(&p, batch).expect("full mask evaluates");
        prop_assert_eq!(fast, full);
    }
}

/// The proptests above genuinely exercise the dictionary kernels: the
/// generator emits every text column dictionary-encoded.
#[test]
fn generated_text_columns_are_dict_backed() {
    let catalog = make_catalog([50, 50, 50]);
    let db = small_db(&catalog, 7);
    for r in ["R0", "R1", "R2"] {
        let t = db.table(r).expect("table generated");
        let idx = t
            .attrs()
            .iter()
            .position(|a| a.attr.as_str() == "t")
            .expect("t attribute");
        assert!(
            t.batch().column(idx).dict_values().is_some(),
            "{r}.t is not dictionary-encoded"
        );
    }
}

/// A deterministic regression for the selection-vector switch itself: the
/// first conjunct keeps 1% of 1,000 rows (well under the 1/8 density
/// threshold), so the remaining conjuncts run in survivor-index mode — and
/// the mask must still be bit-identical to full-width evaluation. The OR
/// case mirrors it: the first disjunct accepts 99% of rows, so later
/// disjuncts only visit the undecided 1%.
#[test]
fn selection_vector_switch_is_bit_identical_on_dense_fixture() {
    let mut db = Database::new();
    db.insert_table(Table::new(
        "R",
        [AttrRef::new("R", "a"), AttrRef::new("R", "b")],
        (0..1_000)
            .map(|i| vec![Value::Int(i % 100), Value::Int(i % 3)])
            .collect(),
    ));
    let batch = db.table("R").expect("table").batch();

    let and = Predicate::and([
        Predicate::cmp(AttrRef::new("R", "a"), CompareOp::Eq, 5),
        Predicate::cmp(AttrRef::new("R", "b"), CompareOp::Gt, 0),
    ]);
    let fast = selection_mask(&and, batch).expect("evaluates");
    assert_eq!(fast, selection_mask_full(&and, batch).expect("evaluates"));
    assert_eq!(fast.iter().filter(|&&m| m).count(), 7); // i%100==5 ∧ i%3>0

    let or = Predicate::or([
        Predicate::cmp(AttrRef::new("R", "a"), CompareOp::Ne, 5),
        Predicate::cmp(AttrRef::new("R", "b"), CompareOp::Eq, 1),
    ]);
    let fast = selection_mask(&or, batch).expect("evaluates");
    assert_eq!(fast, selection_mask_full(&or, batch).expect("evaluates"));
    assert_eq!(fast.iter().filter(|&&m| m).count(), 993); // ¬(a=5 ∧ b≠1)
}

/// A deterministic fixture: `R` has 100 rows (k = i mod 7, x = i mod 10) and
/// `S` has 30 rows (k = j mod 7).
fn fixture_db() -> Database {
    let mut db = Database::new();
    db.insert_table(Table::new(
        "R",
        [AttrRef::new("R", "k"), AttrRef::new("R", "x")],
        (0..100)
            .map(|i| vec![Value::Int(i % 7), Value::Int(i % 10)])
            .collect(),
    ));
    db.insert_table(Table::new(
        "S",
        [AttrRef::new("S", "k")],
        (0..30).map(|j| vec![Value::Int(j % 7)]).collect(),
    ));
    db
}

/// Selection over 100 rows at 10 records/block: 10 blocks read, and the 50
/// surviving rows (x < 5) cost 5 blocks written. These totals are the ones
/// the tuple-at-a-time engine reported and must not move under per-batch
/// accounting.
#[test]
fn iosim_selection_block_counts_are_unchanged() {
    let db = fixture_db();
    let q = Expr::select(
        Expr::base("R"),
        Predicate::cmp(AttrRef::new("R", "x"), CompareOp::Lt, 5),
    );
    let (out, report) = measure(&q, &db, 10.0).expect("iosim executes");
    assert_eq!(out.len(), 50);
    assert_eq!(report.blocks_read, 10.0);
    assert_eq!(report.blocks_written, 5.0);
    assert_eq!(report.total(), 15.0);
}

/// Nested-loop join accounting: 10 outer blocks x 3 inner blocks read, and
/// the 430 matches (15*5*2 + 14*4*5) write ceil(430/10) = 43 blocks.
#[test]
fn iosim_join_block_counts_are_unchanged() {
    let db = fixture_db();
    let q = Expr::join(
        Expr::base("R"),
        Expr::base("S"),
        JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
    );
    let (out, report) = measure(&q, &db, 10.0).expect("iosim executes");
    assert_eq!(out.len(), 430);
    assert_eq!(report.blocks_read, 30.0);
    assert_eq!(report.blocks_written, 43.0);
    assert_eq!(report.total(), 73.0);
}

/// Aggregation accounting: the 100-row input costs 10 blocks read and the 7
/// groups (k = 0..6) cost 1 block written.
#[test]
fn iosim_aggregate_block_counts_are_unchanged() {
    let db = fixture_db();
    let q = Expr::aggregate(
        Expr::base("R"),
        [AttrRef::new("R", "k")],
        [AggExpr::new(AggFunc::Sum, AttrRef::new("R", "x"), "sx")],
    );
    let (out, report) = measure(&q, &db, 10.0).expect("iosim executes");
    assert_eq!(out.len(), 7);
    assert_eq!(report.blocks_read, 10.0);
    assert_eq!(report.blocks_written, 1.0);
    assert_eq!(report.total(), 11.0);
}

/// `push_row` (via [`Table::extend_rows`]) on a table whose columns are
/// shared with a paged twin must copy-on-write: the append lands in the
/// extended handle only, while the pool-backed pages — and every other
/// handle still reading them — keep the original values. Covered at both a
/// single page per column (the materialised batch can share the frame's
/// `Arc` directly) and multiple pages per column.
#[test]
fn push_row_on_a_shared_page_copies_before_writing() {
    use mvdesign::engine::BufferPool;
    for page_rows in [4usize, 16] {
        let mut original = Table::new(
            "S",
            [AttrRef::new("S", "a"), AttrRef::new("S", "t")],
            (0..10)
                .map(|i| vec![Value::Int(i), Value::text(format!("v{}", i % 3))])
                .collect(),
        );
        let pool = BufferPool::new(None);
        original.page_out(&pool, page_rows);
        let twin = original.clone();
        let mut extended = original.clone();
        extended.extend_rows(vec![vec![Value::Int(99), Value::text("fresh")]]);
        assert_eq!(extended.len(), 11);
        assert_eq!(extended.batch().column(0).value(10), Value::Int(99));
        // The paged twin and the original handle still read the old pages.
        for t in [&twin, &original] {
            assert_eq!(t.len(), 10, "page mutated through a shared handle");
            assert_eq!(t.batch().column(0).value(9), Value::Int(9));
            assert_eq!(t.batch().column(1).value(9), Value::text("v0"));
        }
    }
}

/// A join over a paged input gathers its payload page-on-demand; with three
/// rows per page and match indices scattered across the whole table, every
/// gathered run spans page boundaries — and must stay bit-identical to the
/// resident gather, dictionary tables included.
#[test]
fn paged_gather_spanning_page_boundaries_matches_resident() {
    use mvdesign::engine::{execute_with_context, BufferPool, ExecContext};
    let mut resident = Database::new();
    resident.insert_table(Table::new(
        "L",
        [
            AttrRef::new("L", "id"),
            AttrRef::new("L", "k"),
            AttrRef::new("L", "t"),
        ],
        (0..13)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 4),
                    Value::text(format!("v{}", i % 5)),
                ]
            })
            .collect(),
    ));
    resident.insert_table(Table::new(
        "R",
        [AttrRef::new("R", "k")],
        // Duplicate keys: each match gathers several L rows from
        // non-adjacent pages.
        (0..8).map(|j| vec![Value::Int(j % 4)]).collect(),
    ));
    let q = Expr::join(
        Expr::base("L"),
        Expr::base("R"),
        JoinCondition::on(AttrRef::new("L", "k"), AttrRef::new("R", "k")),
    );
    let mut paged = resident.clone();
    let pool = BufferPool::new(Some(0));
    paged.page_out(&pool, 3);
    for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
        let base = execute_with(&q, &resident, algo).expect("resident");
        let out = execute_with_context(&q, &paged, algo, &ExecContext::default()).expect("paged");
        assert_eq!(base.batch(), out.batch(), "{algo:?} gather differs");
    }
    assert!(
        pool.stats().misses > 0,
        "a zero-byte pool must re-read pages"
    );
}

/// Filtering down to zero rows — and filtering a zero-row table — must
/// produce the same empty batch (same attrs, same column variants) whether
/// the input is resident or paged. A zero-row table pages out to zero
/// pages, so this also covers the empty `PagedBatch` round-trip.
#[test]
fn empty_batch_filter_matches_resident_and_paged() {
    use mvdesign::engine::{execute_with_context, BufferPool, ExecContext};
    let attrs = [AttrRef::new("E", "a"), AttrRef::new("E", "t")];
    let none_match = Expr::select(
        Expr::base("E"),
        Predicate::cmp(AttrRef::new("E", "a"), CompareOp::Gt, 1_000),
    );
    for rows in [0usize, 9] {
        let mut resident = Database::new();
        resident.insert_table(Table::new(
            "E",
            attrs.clone(),
            (0..rows as i64)
                .map(|i| vec![Value::Int(i), Value::text(format!("v{}", i % 2))])
                .collect(),
        ));
        let mut paged = resident.clone();
        let pool = BufferPool::new(None);
        paged.page_out(&pool, 4);
        let base = execute_with(&none_match, &resident, JoinAlgo::NestedLoop).expect("resident");
        let out = execute_with_context(
            &none_match,
            &paged,
            JoinAlgo::NestedLoop,
            &ExecContext::default(),
        )
        .expect("paged");
        assert_eq!(base.len(), 0);
        assert_eq!(
            base.batch(),
            out.batch(),
            "empty filter differs at {rows} rows"
        );
        assert_eq!(out.attrs(), &attrs, "attrs lost through an empty filter");
    }
}
