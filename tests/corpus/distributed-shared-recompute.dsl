# Regression corpus: distributed SharedRecompute vs. the core evaluator.
#
# The distributed evaluator's SharedRecompute branch used to ignore the
# maintenance policy entirely: it billed full recomputation (fraction 1.0) and
# dropped the incremental delta-apply scan term, so at zero link cost it
# disagreed with the core evaluator whenever the annotation used
# MaintenancePolicy::Incremental. This two-join workload materializes shared
# interior nodes under the greedy, which makes the discrepancy visible in the
# maintenance component of the cost breakdown.

relation Orders {
    attr oid int
    attr cid int
    attr total int
    records 60000
    blocks 6000
    update_frequency 4
    selectivity total 0.05
}

relation Customers {
    attr cid int
    attr region int
    records 3000
    blocks 300
    update_frequency 0.5
    selectivity region 0.1
}

relation Items {
    attr oid int
    attr price int
    records 200000
    blocks 20000
    update_frequency 6
    selectivity price 0.02
}

join Orders.cid Customers.cid 0.000333333333333333
join Orders.oid Items.oid 0.0000166666666666667

query regional_sales 30 {
    SELECT Customers.region, SUM(Items.price) AS revenue
    FROM Orders, Customers, Items
    WHERE Orders.cid = Customers.cid AND Orders.oid = Items.oid
    GROUP BY Customers.region
}

query big_orders 12 {
    SELECT Orders.oid
    FROM Orders, Customers
    WHERE Orders.cid = Customers.cid AND Orders.total > 7
}

query priced_items 8 {
    SELECT Items.price
    FROM Orders, Items
    WHERE Orders.oid = Items.oid AND Items.price > 2
}
