# Regression corpus: a populated relation claiming zero blocks.
#
# 100 records cannot occupy 0 blocks; block-based cost formulas divide by the
# block count, so the old builder let this through and the NaN/∞ surfaced much
# later inside selection. The catalog builder now rejects the stats up front —
# parsing this file must fail with an error naming the block count.

relation Broken {
    attr id int
    records 100
    blocks 0
    update_frequency 1
}

query q 1 {
    SELECT Broken.id
    FROM Broken
}
