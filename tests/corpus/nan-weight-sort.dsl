# Regression corpus: NaN node weights must not panic the search sorts.
#
# Two hazards in one workload, both with *valid* catalog statistics:
#
# 1. Overflow NaN: Big and Huge are large enough that join cost estimates
#    overflow f64 to infinity, and the node weight `fq·Ca − fu·Cm` becomes
#    `∞ − ∞ = NaN`. The candidate/population sorts in the search algorithms
#    used `partial_cmp(..).expect("finite weights")`, which panicked the
#    moment such a weight entered the comparator; they now use `total_cmp`,
#    so every selection algorithm must run to completion (NaN-weight
#    candidates simply sort to one end and lose).
# 2. The zero-records corner: Archive is a legal `(0 records, 0 blocks)`
#    relation, so every cost term on its side of the plan is exactly zero.
#
# The same workload also pins the estimator-overflow fix: join-output
# cardinality estimates used to overflow f64 to infinity and panic
# `RelationStats::new`; the estimator now saturates them at `f64::MAX`
# (op-cost arithmetic may still reach infinity, which is what makes the
# weights NaN).
#
# Catalog validation must NOT reject this file — all statistics are finite
# and non-negative — which is precisely why the sorts themselves have to be
# total.

relation Archive {
    attr id int
    attr tag int
    records 0
    blocks 0
    update_frequency 1
    selectivity tag 0.1
}

relation Live {
    attr id int
    attr val int
    records 8000
    blocks 800
    update_frequency 2
    selectivity val 0.2
}

relation Big {
    attr id int
    attr x int
    records 1e300
    blocks 1e298
    update_frequency 1
    selectivity x 0.5
}

relation Huge {
    attr id int
    attr y int
    records 1e300
    blocks 1e298
    update_frequency 1
    selectivity y 0.5
}

join Archive.id Live.id 0.000125
join Big.id Huge.id 1
join Live.id Big.id 0.000125

query hot 20 {
    SELECT Live.val
    FROM Archive, Live
    WHERE Archive.id = Live.id AND Live.val > 3
}

query overflow 5 {
    SELECT Big.x
    FROM Big, Huge
    WHERE Big.id = Huge.id AND Big.x > 1
}

query wide 3 {
    SELECT Huge.y
    FROM Live, Big, Huge
    WHERE Live.id = Big.id AND Big.id = Huge.id
}
