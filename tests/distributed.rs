//! Workspace-level tests of the distributed extension: shipping-aware
//! selection and view placement on the paper's running example.

use std::collections::BTreeSet;

use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, GenerateConfig, GreedySelection, MaintenanceMode,
    UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::distributed::{
    DistributedEvaluator, FilterShipping, MarginalGreedy, Placement, Topology, ViewPlacement,
};
use mvdesign::optimizer::Planner;
use mvdesign::workload::paper_example;

fn annotated() -> AnnotatedMvpp {
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let mvpp = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )
    .remove(0);
    AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max)
}

fn three_sites(link: f64) -> (Topology, Placement) {
    let topo = Topology::uniform(3, link);
    let wh = topo.site(0).expect("site 0");
    let sales = topo.site(1).expect("site 1");
    let mfg = topo.site(2).expect("site 2");
    let mut placement = Placement::new(wh);
    placement.assign("Order", sales);
    placement.assign("Customer", sales);
    placement.assign("Product", mfg);
    placement.assign("Division", mfg);
    placement.assign("Part", mfg);
    (topo, placement)
}

#[test]
fn shipping_grows_monotonically_with_link_cost() {
    let a = annotated();
    let mut previous = 0.0;
    for link in [0.0, 1.0, 5.0, 25.0] {
        let (topo, placement) = three_sites(link);
        let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtWarehouse);
        let total = eval
            .evaluate(&BTreeSet::new(), MaintenanceMode::SharedRecompute)
            .total;
        assert!(total >= previous, "link {link}: {total} < {previous}");
        previous = total;
    }
}

#[test]
fn at_source_filtering_never_ships_more() {
    let a = annotated();
    let (topo, placement) = three_sites(4.0);
    let warehouse = DistributedEvaluator::new(
        &a,
        topo.clone(),
        placement.clone(),
        FilterShipping::AtWarehouse,
    );
    let source = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtSource);
    for m in [
        BTreeSet::new(),
        GreedySelection::new().run(&a).0,
        a.mvpp().interior().into_iter().collect(),
    ] {
        let w = warehouse
            .evaluate(&m, MaintenanceMode::SharedRecompute)
            .total;
        let s = source.evaluate(&m, MaintenanceMode::SharedRecompute).total;
        assert!(s <= w + 1e-9, "source {s} > warehouse {w}");
    }
}

#[test]
fn marginal_greedy_beats_or_matches_paper_greedy_under_shipping() {
    let a = annotated();
    for link in [1.0, 10.0, 50.0] {
        let (topo, placement) = three_sites(link);
        let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtSource);
        let (paper_set, _) = GreedySelection::new().run(&a);
        let paper_cost = eval
            .evaluate(&paper_set, MaintenanceMode::SharedRecompute)
            .total;
        let (_, marginal_cost) = MarginalGreedy::default().run(&eval);
        assert!(
            marginal_cost.total <= paper_cost + 1e-9,
            "link {link}: marginal {} vs paper {paper_cost}",
            marginal_cost.total
        );
    }
}

#[test]
fn optimal_placement_helps_when_views_are_refresh_heavy() {
    // Crank update frequencies so refresh shipping dominates.
    let mut scenario = paper_example();
    for rel in ["Product", "Division", "Order", "Customer", "Part"] {
        scenario
            .catalog
            .set_update_frequency(rel, 20.0)
            .expect("known");
    }
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let mvpp = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )
    .remove(0);
    let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
    let (topo, placement) = three_sites(10.0);
    let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtWarehouse);
    let m: BTreeSet<_> = GreedySelection::new().run(&a).0;
    if m.is_empty() {
        return; // nothing to place under these frequencies
    }
    let optimal = eval.optimal_view_placement(&m);
    let placed = eval
        .evaluate_placed(&m, &optimal, MaintenanceMode::SharedRecompute)
        .total;
    let at_wh = eval
        .evaluate_placed(
            &m,
            &ViewPlacement::all_at_warehouse(),
            MaintenanceMode::SharedRecompute,
        )
        .total;
    assert!(placed <= at_wh + 1e-9);
}

#[test]
fn views_read_reports_the_access_frontier() {
    let a = annotated();
    let (topo, placement) = three_sites(1.0);
    let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtWarehouse);
    let (m, _) = GreedySelection::new().run(&a);
    let mut any = false;
    for (_, _, root) in a.mvpp().roots() {
        let reads = eval.views_read(&m, *root);
        for v in &reads {
            assert!(m.contains(v), "read set contains unmaterialized node");
        }
        any |= !reads.is_empty();
    }
    assert!(any, "no query reads any view");
}

#[test]
fn design_with_alternative_algorithms_is_exposed_on_the_designer() {
    use mvdesign::core::{Designer, GeneticSelection, MaterializeNone};
    let scenario = paper_example();
    let genetic = Designer::new()
        .design_with(
            &scenario.catalog,
            &scenario.workload,
            &GeneticSelection::default(),
        )
        .expect("designs");
    let greedy = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("designs");
    assert!(genetic.cost.total <= greedy.cost.total + 1e-9);
    let none = Designer::new()
        .design_with(&scenario.catalog, &scenario.workload, &MaterializeNone)
        .expect("designs");
    assert!(none.materialized.is_empty());
    let centralized_none = evaluate(
        &none.mvpp,
        &BTreeSet::new(),
        MaintenanceMode::SharedRecompute,
    );
    assert!((none.cost.total - centralized_none.total).abs() < 1e-6);
}
